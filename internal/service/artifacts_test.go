package service

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/landscape"
)

// submitArtifactJob runs one wait-mode job and returns its artifact id.
func submitArtifactJob(t *testing.T, s *Server, body string) string {
	t.Helper()
	rec, out := do(t, s, "POST", "/jobs", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("job failed: %d %v", rec.Code, out)
	}
	res, _ := out["result"].(map[string]any)
	if res == nil {
		t.Fatalf("no result: %v", out)
	}
	id, _ := res["artifact_id"].(string)
	if id == "" {
		t.Fatalf("finished job published no artifact: %v", res)
	}
	return id
}

// queryPoints builds a deterministic batch straddling the grid hull.
func queryArtifactPoints(rng *rand.Rand, n int, axes []landscape.Axis) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, len(axes))
		for k, ax := range axes {
			span := ax.Max - ax.Min
			p[k] = ax.Min - 0.5*span + 2*span*rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// postQuery POSTs a query batch and decodes values (and gradients) with
// exact float64 round-tripping.
func postQuery(t *testing.T, s *Server, id string, pts [][]float64, gradients bool) (int, []float64, [][]float64) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"points": pts, "gradients": gradients})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := do(t, s, "POST", "/landscapes/"+id+"/query", string(body))
	var resp struct {
		Values    []float64   `json:"values"`
		Gradients [][]float64 `json:"gradients"`
	}
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding query response: %v", err)
		}
	}
	return rec.Code, resp.Values, resp.Gradients
}

// artifactStatsBlock fetches the /stats artifacts block.
func artifactStatsBlock(t *testing.T, s *Server) map[string]any {
	t.Helper()
	rec, out := do(t, s, "GET", "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	block, _ := out["artifacts"].(map[string]any)
	if block == nil {
		t.Fatalf("stats has no artifacts block: %v", out)
	}
	return block
}

// TestArtifactPublishListGet: a finished job publishes a content-addressed
// artifact; the listing and metadata endpoints serve it; unknown ids 404.
func TestArtifactPublishListGet(t *testing.T) {
	s := newTestServer(t, Config{})
	id := submitArtifactJob(t, s, smallJob())
	if !strings.HasPrefix(id, "ls-") {
		t.Fatalf("artifact id %q, want ls- prefix", id)
	}

	rec, out := do(t, s, "GET", "/landscapes", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	list, _ := out["landscapes"].([]any)
	if len(list) != 1 {
		t.Fatalf("listed %d artifacts, want 1", len(list))
	}

	rec, meta := do(t, s, "GET", "/landscapes/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d %v", rec.Code, meta)
	}
	if meta["id"] != id {
		t.Fatalf("metadata id %v, want %s", meta["id"], id)
	}
	if pts := meta["points"].(float64); pts != 12*14 {
		t.Fatalf("points %v, want %d", pts, 12*14)
	}
	axes, _ := meta["axes"].([]any)
	if len(axes) != 2 {
		t.Fatalf("axes %v, want 2", axes)
	}
	solver, _ := meta["solver"].(map[string]any)
	if solver == nil || solver["method"] != "fista" || solver["sampling_fraction"].(float64) != 0.25 {
		t.Fatalf("solver provenance %v", meta["solver"])
	}
	if meta["nrmse"] != nil {
		t.Fatalf("nrmse %v, want null (unknown)", meta["nrmse"])
	}

	// Identical job → identical content → the same artifact (dedup).
	if id2 := submitArtifactJob(t, s, smallJob()); id2 != id {
		t.Fatalf("identical job published a different artifact: %s vs %s", id2, id)
	}
	if n := artifactStatsBlock(t, s)["count"].(float64); n != 1 {
		t.Fatalf("store holds %v artifacts after dedup, want 1", n)
	}

	for _, path := range []string{"/landscapes/ls-nope", "/landscapes/ls-nope/grid"} {
		if rec, _ := do(t, s, "GET", path, ""); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, rec.Code)
		}
	}
	if code, _, _ := postQuery(t, s, "ls-nope", [][]float64{{0, 0}}, false); code != http.StatusNotFound {
		t.Fatalf("query of unknown artifact: %d, want 404", code)
	}
}

// TestArtifactQueryMatchesInProcess: served values and gradients are
// bit-identical to fitting and evaluating the same artifact in process —
// through JSON, across LRU hits, misses, and eviction-forced refits.
func TestArtifactQueryMatchesInProcess(t *testing.T) {
	// LRU of 1: publishing two artifacts and alternating queries forces
	// evict-then-refit on every switch.
	s := newTestServer(t, Config{ArtifactLRU: 1})
	idA := submitArtifactJob(t, s, smallJob())
	idB := submitArtifactJob(t, s, `{
		"problem": {"kind": "maxcut3", "n": 8, "seed": 8},
		"backend": {"kind": "analytic"},
		"grid": {"beta_n": 9, "gamma_n": 11},
		"options": {"sampling_fraction": 0.3, "seed": 2},
		"wait": true
	}`)

	// Fit the reference surrogates in process from the served grid data.
	want := map[string]struct {
		ip   interp.Interpolator
		axes []landscape.Axis
	}{}
	for _, id := range []string{idA, idB} {
		rec, _ := do(t, s, "GET", "/landscapes/"+id+"/grid", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("grid: %d", rec.Code)
		}
		var grid struct {
			Meta struct {
				Axes []AxisSpec `json:"axes"`
			} `json:"meta"`
			Data []float64 `json:"data"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &grid); err != nil {
			t.Fatal(err)
		}
		axes := make([]landscape.Axis, len(grid.Meta.Axes))
		knots := make([][]float64, len(grid.Meta.Axes))
		for i, a := range grid.Meta.Axes {
			axes[i] = landscape.Axis{Name: a.Name, Min: a.Min, Max: a.Max, N: a.N}
			knots[i] = axes[i].Values()
		}
		ip, err := interp.Fit(knots, grid.Data)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = struct {
			ip   interp.Interpolator
			axes []landscape.Axis
		}{ip, axes}
	}

	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 3; round++ {
		for _, id := range []string{idA, idB} {
			ref := want[id]
			pts := queryArtifactPoints(rng, 57, ref.axes)
			code, values, grads := postQuery(t, s, id, pts, true)
			if code != http.StatusOK {
				t.Fatalf("query: %d", code)
			}
			if len(values) != len(pts) || len(grads) != len(pts) {
				t.Fatalf("got %d values / %d gradients for %d points", len(values), len(grads), len(pts))
			}
			for i, p := range pts {
				if math.Float64bits(values[i]) != math.Float64bits(ref.ip.AtPoint(p)) {
					t.Fatalf("round %d %s: value %d: served %g != in-process %g",
						round, id, i, values[i], ref.ip.AtPoint(p))
				}
				g := ref.ip.GradientAt(p)
				for k := range g {
					if math.Float64bits(grads[i][k]) != math.Float64bits(g[k]) {
						t.Fatalf("round %d %s: gradient %d[%d]: served %g != in-process %g",
							round, id, i, k, grads[i][k], g[k])
					}
				}
			}
		}
	}

	// With capacity 1 and alternating artifacts, every switch evicts: the
	// interleaved rounds above are mostly misses; re-query one artifact twice
	// in a row and the second must be an LRU hit.
	stats := artifactStatsBlock(t, s)
	missesBefore, hitsBefore := stats["lru_misses"].(float64), stats["lru_hits"].(float64)
	if stats["evictions"].(float64) == 0 {
		t.Fatal("alternating queries with lru capacity 1 evicted nothing")
	}
	pts := queryArtifactPoints(rng, 5, want[idA].axes)
	if code, _, _ := postQuery(t, s, idA, pts, false); code != http.StatusOK {
		t.Fatal("warm query failed")
	}
	if code, _, _ := postQuery(t, s, idA, pts, false); code != http.StatusOK {
		t.Fatal("hot query failed")
	}
	stats = artifactStatsBlock(t, s)
	if miss := stats["lru_misses"].(float64) - missesBefore; miss != 1 {
		t.Fatalf("misses after back-to-back queries: %v, want 1", miss)
	}
	if hits := stats["lru_hits"].(float64) - hitsBefore; hits != 1 {
		t.Fatalf("hits after back-to-back queries: %v, want 1", hits)
	}
	if qp := stats["query_points"].(float64); qp == 0 {
		t.Fatal("query_points counter never moved")
	}
}

// TestArtifactQueryValidation: malformed batches answer 400 before any
// evaluation.
func TestArtifactQueryValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxQueryPoints: 4})
	id := submitArtifactJob(t, s, smallJob())
	cases := []struct {
		name, body string
	}{
		{"not json", "nope"},
		{"no points", `{"points": []}`},
		{"missing points", `{}`},
		{"wrong arity", `{"points": [[0.1]]}`},
		{"extra coordinate", `{"points": [[0.1, 0.2, 0.3]]}`},
		{"non-finite", `{"points": [[0.1, 1e999]]}`},
		{"over limit", `{"points": [[0,0],[0,0],[0,0],[0,0],[0,0]]}`},
		{"unknown field", `{"points": [[0,0]], "wat": 1}`},
	}
	for _, c := range cases {
		rec, out := do(t, s, "POST", "/landscapes/"+id+"/query", c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", c.name, rec.Code, out)
		}
	}
	// The in-range batch still works after all the rejects.
	if code, values, _ := postQuery(t, s, id, [][]float64{{0.1, 0.2}}, false); code != http.StatusOK || len(values) != 1 {
		t.Fatalf("valid query after rejects: %d", code)
	}
}

// TestArtifactRestartSurvival: a disk-backed store reloads its artifacts on
// restart and serves bit-identical values, including NaN data holes.
func TestArtifactRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{ArtifactDir: dir})
	id := submitArtifactJob(t, s1, smallJob())
	pts := [][]float64{{0.3, 1.1}, {-9, 99}, {0.7, 2.0}}
	_, before, _ := postQuery(t, s1, id, pts, false)
	s1.Close()

	s2 := newTestServer(t, Config{ArtifactDir: dir})
	rec, out := do(t, s2, "GET", "/landscapes", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list after restart: %d", rec.Code)
	}
	if list, _ := out["landscapes"].([]any); len(list) != 1 {
		t.Fatalf("restarted store lists %d artifacts, want 1", len(list))
	}
	code, after, _ := postQuery(t, s2, id, pts, false)
	if code != http.StatusOK {
		t.Fatalf("query after restart: %d", code)
	}
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatalf("value %d changed across restart: %g vs %g", i, before[i], after[i])
		}
	}
	// The restarted server never ran a job: its artifact came purely from
	// disk, and publishing the same job again deduplicates against it.
	if n := artifactStatsBlock(t, s2)["published"].(float64); n != 0 {
		t.Fatalf("restarted server counts %v publishes, want 0", n)
	}
	if id2 := submitArtifactJob(t, s2, smallJob()); id2 != id {
		t.Fatalf("restarted server republished as %s, want %s", id2, id)
	}
}

// TestArtifactCorruptFileSkipped: a damaged artifact file is skipped at boot
// (counted, not fatal) while healthy ones load.
func TestArtifactCorruptFileSkipped(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{ArtifactDir: dir})
	submitArtifactJob(t, s1, smallJob())
	s1.Close()

	if err := writeFile(dir+"/ls-deadbeef00000000.landscape", "oscar-landscape-artifact 2\n{broken"); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, Config{ArtifactDir: dir})
	stats := artifactStatsBlock(t, s2)
	if stats["count"].(float64) != 1 {
		t.Fatalf("store count %v, want 1 (healthy artifact only)", stats["count"])
	}
	if stats["load_errors"].(float64) != 1 {
		t.Fatalf("load_errors %v, want 1", stats["load_errors"])
	}
}

// TestArtifactMetrics: the /metrics export carries the artifact counters the
// CI smoke job asserts on.
func TestArtifactMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	id := submitArtifactJob(t, s, smallJob())
	pts := [][]float64{{0.2, 0.9}}
	postQuery(t, s, id, pts, false)
	postQuery(t, s, id, pts, false)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"oscard_artifacts 1\n",
		"oscard_artifacts_published_total 1\n",
		"oscard_artifact_lru_hits_total 1\n",
		"oscard_artifact_lru_misses_total 1\n",
		"oscard_artifact_lru_entries 1\n",
		"oscard_artifact_query_points_total 2\n",
		"oscard_artifact_evictions_total 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", strings.TrimSpace(want))
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
