package service

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/exec"
)

// cacheArchive is the on-disk form of the server's cache registry: one
// exec.Cache snapshot per device configuration.
type cacheArchive struct {
	Version int
	Quantum float64
	Caches  map[string][]byte
}

const archiveVersion = 1

// SnapshotCaches writes every per-configuration execution cache to w, so a
// restarted server can warm-start from its predecessor's memoized circuit
// executions.
func (s *Server) SnapshotCaches(w io.Writer) error {
	s.mu.Lock()
	caches := make(map[string]*exec.Cache, len(s.caches))
	for k, c := range s.caches {
		caches[k] = c
	}
	s.mu.Unlock()

	arch := cacheArchive{
		Version: archiveVersion,
		Quantum: s.cfg.Quantum,
		Caches:  make(map[string][]byte, len(caches)),
	}
	for k, c := range caches {
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			return fmt.Errorf("service: snapshotting cache for %s: %w", k, err)
		}
		arch.Caches[k] = buf.Bytes()
	}
	return gob.NewEncoder(w).Encode(arch)
}

// RestoreCaches merges a SnapshotCaches archive into the registry. The
// archive must have been written with the server's quantization step.
func (s *Server) RestoreCaches(r io.Reader) error {
	var arch cacheArchive
	if err := gob.NewDecoder(r).Decode(&arch); err != nil {
		return fmt.Errorf("service: decoding cache archive: %w", err)
	}
	if arch.Version != archiveVersion {
		return fmt.Errorf("service: cache archive version %d, want %d", arch.Version, archiveVersion)
	}
	if arch.Quantum != s.cfg.Quantum {
		return fmt.Errorf("service: cache archive quantum %g does not match server quantum %g",
			arch.Quantum, s.cfg.Quantum)
	}
	for key, blob := range arch.Caches {
		if err := s.cacheFor(key).Restore(bytes.NewReader(blob)); err != nil {
			return fmt.Errorf("service: restoring cache for %s: %w", key, err)
		}
	}
	return nil
}

// SaveCacheFile spills the cache registry to path (written to a temp file
// first so an interrupted save never truncates a good archive).
func (s *Server) SaveCacheFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".oscard-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.SnapshotCaches(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCacheFile warm-starts the cache registry from path. A missing file is
// not an error — it is the normal first boot.
func (s *Server) LoadCacheFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.RestoreCaches(f)
}

// CacheEntries reports the total number of memoized executions across all
// configurations (used by oscard's startup/shutdown logging).
func (s *Server) CacheEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.caches {
		n += c.Len()
	}
	return n
}
