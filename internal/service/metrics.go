package service

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// handleMetrics exports server state in the Prometheus text exposition
// format (version 0.0.4) — hand-rolled, no client library dependency. It
// covers job states, the execution-cache counters, server-wide fleet
// retry/quarantine totals, per-job gauges of running fleet jobs (learned
// batch sizes, retry/quarantine progress, per-device tail estimates), build
// information, and the per-stage latency histograms fed by span completions.
// Families are emitted in sorted name order, every scrape, so diffs between
// scrapes — and smoke-test greps — are stable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type fleetRow struct {
		job      string
		progress FleetProgress
		sch      *fleet.Scheduler
		states   []fleet.DeviceState
	}
	s.mu.Lock()
	counts := map[JobState]int{}
	var fleets []fleetRow
	for _, id := range s.order {
		j := s.jobs[id]
		counts[j.state]++
		if j.progress != nil && j.state == StateRunning {
			fleets = append(fleets, fleetRow{job: id, progress: *j.progress, sch: j.fleet})
		}
	}
	var hits, misses int64
	entries := 0
	configs := len(s.caches)
	for _, c := range s.caches {
		hits += c.Hits()
		misses += c.Misses()
		entries += c.Len()
	}
	s.mu.Unlock()
	// Snapshot device states outside the server lock: States takes the
	// scheduler's own mutex, which is free while planning is done and
	// streaming runs.
	for i := range fleets {
		if fleets[i].sch != nil {
			fleets[i].states = fleets[i].sch.States()
		}
	}

	// Each family renders into its own block; all blocks — these and the
	// histogram registry's — merge and sort by family name before writing.
	var fams []obs.PromFamily
	family := func(name, typ, help string, body func(b *strings.Builder)) {
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		body(&b)
		fams = append(fams, obs.PromFamily{Name: name, Text: b.String()})
	}
	gauge := func(name, help string, body func(b *strings.Builder)) {
		family(name, "gauge", help, body)
	}
	counter := func(name, help string, body func(b *strings.Builder)) {
		family(name, "counter", help, body)
	}

	gauge("oscard_build_info", "Build information; value is always 1.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_build_info{go_version=%q,revision=%q} 1\n",
			promLabel(runtime.Version()), promLabel(buildRevision()))
	})
	gauge("oscard_uptime_seconds", "Seconds since the server started.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_uptime_seconds %g\n", time.Since(s.start).Seconds())
	})
	gauge("oscard_jobs", "Jobs currently tracked, by state.", func(b *strings.Builder) {
		for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
			fmt.Fprintf(b, "oscard_jobs{state=%q} %d\n", st, counts[st])
		}
	})
	counter("oscard_panics_total", "Recovered internal panics.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_panics_total %d\n", s.panics.Load())
	})
	counter("oscard_trace_dropped_spans_total", "Span starts rejected by per-job span caps, over finished jobs.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_trace_dropped_spans_total %d\n", s.droppedSpans.Load())
	})

	counter("oscard_cache_hits_total", "Execution-cache lookups served without running a circuit.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_cache_hits_total %d\n", hits)
	})
	counter("oscard_cache_misses_total", "Execution-cache lookups that fell through to execution.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_cache_misses_total %d\n", misses)
	})
	gauge("oscard_cache_entries", "Memoized circuit executions across all device configurations.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_cache_entries %d\n", entries)
	})
	gauge("oscard_cache_configs", "Distinct device configurations holding a cache.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_cache_configs %d\n", configs)
	})

	arts, fitted := s.artifacts.len()
	gauge("oscard_artifacts", "Landscape artifacts available for serving.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifacts %d\n", arts)
	})
	gauge("oscard_artifact_lru_entries", "Fitted interpolators resident in the artifact LRU.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifact_lru_entries %d\n", fitted)
	})
	counter("oscard_artifacts_published_total", "Landscape artifacts published by finished jobs this process.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifacts_published_total %d\n", s.artifacts.published.Load())
	})
	counter("oscard_artifact_lru_hits_total", "Artifact queries served by an already-fitted interpolator.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifact_lru_hits_total %d\n", s.artifacts.lruHits.Load())
	})
	counter("oscard_artifact_lru_misses_total", "Artifact queries that had to fit (or refit) the interpolator.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifact_lru_misses_total %d\n", s.artifacts.lruMisses.Load())
	})
	counter("oscard_artifact_evictions_total", "Fitted interpolators evicted from the artifact LRU.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifact_evictions_total %d\n", s.artifacts.evictions.Load())
	})
	counter("oscard_artifact_query_points_total", "Points served by the artifact query endpoint.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifact_query_points_total %d\n", s.artifacts.queryPoints.Load())
	})
	counter("oscard_artifact_load_errors_total", "Artifacts on disk that failed to load at boot.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifact_load_errors_total %d\n", s.artifacts.loadErrors.Load())
	})
	counter("oscard_artifact_publish_errors_total", "Artifact disk writes that failed at publish.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_artifact_publish_errors_total %d\n", s.artifacts.publishErrors.Load())
	})

	counter("oscard_fleet_retries_total", "Failed fleet dispatches that were retried or re-dispatched, over finished jobs.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_fleet_retries_total %d\n", s.fleetRetries.Load())
	})
	counter("oscard_fleet_quarantine_events_total", "Fleet quarantine transitions (bench and re-admit), over finished jobs.", func(b *strings.Builder) {
		fmt.Fprintf(b, "oscard_fleet_quarantine_events_total %d\n", s.fleetQuarantines.Load())
	})

	perFleet := func(line func(b *strings.Builder, job string, f *fleetRow)) func(b *strings.Builder) {
		return func(b *strings.Builder) {
			for i := range fleets {
				line(b, promLabel(fleets[i].job), &fleets[i])
			}
		}
	}
	gauge("oscard_fleet_batch_size", "Learned per-device batch size of running fleet jobs.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			devices := make([]string, 0, len(f.progress.Devices))
			for d := range f.progress.Devices {
				devices = append(devices, d)
			}
			sort.Strings(devices)
			for _, d := range devices {
				fmt.Fprintf(b, "oscard_fleet_batch_size{job=\"%s\",device=\"%s\"} %d\n",
					job, promLabel(d), f.progress.Devices[d])
			}
		}))
	gauge("oscard_fleet_samples_done", "Samples merged into the streaming reconstruction.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			fmt.Fprintf(b, "oscard_fleet_samples_done{job=\"%s\"} %d\n", job, f.progress.SamplesDone)
		}))
	gauge("oscard_fleet_samples_total", "Samples a running fleet job will merge in total.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			fmt.Fprintf(b, "oscard_fleet_samples_total{job=\"%s\"} %d\n", job, f.progress.SamplesTotal)
		}))
	gauge("oscard_fleet_solves", "Interim reconstructions completed by a running fleet job.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			fmt.Fprintf(b, "oscard_fleet_solves{job=\"%s\"} %d\n", job, f.progress.Solves)
		}))
	gauge("oscard_fleet_retries", "Retried or re-dispatched batches of a running fleet job.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			fmt.Fprintf(b, "oscard_fleet_retries{job=\"%s\"} %d\n", job, f.progress.Retries)
		}))
	gauge("oscard_fleet_quarantine_events", "Quarantine transitions of a running fleet job.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			fmt.Fprintf(b, "oscard_fleet_quarantine_events{job=\"%s\"} %d\n", job, f.progress.QuarantineEvents)
		}))
	gauge("oscard_fleet_tail_prob", "Learned per-device tail-event probability of running fleet jobs.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			for _, ds := range f.states {
				fmt.Fprintf(b, "oscard_fleet_tail_prob{job=\"%s\",device=\"%s\"} %g\n", job, promLabel(ds.Name), ds.TailProb)
			}
		}))
	gauge("oscard_fleet_fail_rate", "Learned per-device dispatch-failure rate of running fleet jobs.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			for _, ds := range f.states {
				fmt.Fprintf(b, "oscard_fleet_fail_rate{job=\"%s\",device=\"%s\"} %g\n", job, promLabel(ds.Name), ds.FailRate)
			}
		}))
	gauge("oscard_fleet_quarantined", "Whether a device of a running fleet job is currently benched.",
		perFleet(func(b *strings.Builder, job string, f *fleetRow) {
			for _, ds := range f.states {
				quarantined := 0
				if ds.Quarantined {
					quarantined = 1
				}
				fmt.Fprintf(b, "oscard_fleet_quarantined{job=\"%s\",device=\"%s\"} %d\n", job, promLabel(ds.Name), quarantined)
			}
		}))

	fams = append(fams, s.metrics.Families()...)
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })

	var out strings.Builder
	for _, f := range fams {
		out.WriteString(f.Text)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(out.String()))
}

// buildRevision returns the VCS revision baked into the binary, or "unknown"
// when built outside a checkout (go test binaries, stripped builds).
func buildRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return "unknown"
}

// promLabel escapes a label value for the Prometheus text format, which
// permits exactly three escape sequences inside quoted values: \\, \", and
// \n. Go's %q would emit \t, \xNN, and \uNNNN forms that parsers reject, so
// the value is built by hand; other control characters (user-supplied device
// names are arbitrary JSON strings) are replaced with spaces.
func promLabel(v string) string {
	return obs.EscapeLabel(v)
}
