package service

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"

	"repro/internal/obs"
)

// stage histogram help strings, shared by the OnEnd hook and /metrics.
const (
	stageWallHelp = "Wall-clock duration of pipeline stages, by span name."
	stageVirtHelp = "Virtual-time duration of fleet-simulation stages, by span name."
)

// newTracer builds the tracer for one job (or one surrogate query): a random
// trace id, the configured span cap, and span completions fanned into the
// per-stage latency histograms. Returns nil — the zero-cost disabled path —
// when Config.DisableTracing is set.
func (s *Server) newTracer() *obs.Tracer {
	if s.cfg.DisableTracing {
		return nil
	}
	tr := obs.NewTracer(randomTraceID())
	tr.MaxSpans = s.cfg.MaxTraceSpans
	tr.OnEnd = s.observeSpan
	return tr
}

// observeSpan feeds one completed span into the stage histograms: spans
// carrying virtual time observe the virtual-seconds family, the rest observe
// wall-clock seconds. Batch spans observe both — their virtual interval is
// the simulated device occupancy while their wall time is the host-side
// evaluation cost, and the two diverging is exactly what a profile wants to
// show.
func (s *Server) observeSpan(e obs.EndedSpan) {
	labels := map[string]string{"stage": e.Name}
	if e.HasVirtual {
		s.metrics.Histogram("oscard_fleet_virtual_seconds", stageVirtHelp,
			labels, obs.DefaultVirtualBuckets()).Observe(e.Virtual)
		if e.Name != "fleet.batch" && e.Name != "qpu.batch" {
			return
		}
	}
	s.metrics.Histogram("oscard_stage_duration_seconds", stageWallHelp,
		labels, obs.DefaultWallBuckets()).Observe(e.Wall.Seconds())
}

// randomTraceID returns a 16-hex-char random trace id.
func randomTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform RNG is gone; a fixed id
		// keeps the server alive and the trace still usable.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// handleJobTrace serves GET /jobs/{id}/trace: the job's span tree as JSON,
// or — with ?format=chrome — Chrome trace-event JSON loadable in
// about:tracing and Perfetto. Works on running jobs too: open spans render
// with a provisional end and "open": true.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var (
		tr    *obs.Tracer
		state JobState
	)
	if ok {
		tr = j.trace
		state = j.state
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job"})
		return
	}
	if tr == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "tracing disabled"})
		return
	}
	tree := tr.Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		writeJSON(w, http.StatusOK, obs.ChromeEvents(tree))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job_id": r.PathValue("id"),
		"state":  state,
		"trace":  tree,
	})
}
