package service

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/ansatz"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/problem"
	"repro/internal/qpu"
)

// JobSpec is the JSON body of a reconstruction job: which problem to build,
// which simulated device to run it on, the parameter grid, and the OSCAR
// sampling/solver options. A Fleet block switches the job into fleet mode:
// sampling is dispatched across the listed virtual devices with adaptive
// batch sizing and streamed into an incremental reconstruction, and polling
// the job reports progressive partial results.
type JobSpec struct {
	Problem ProblemSpec `json:"problem"`
	Backend BackendSpec `json:"backend"`
	Grid    GridSpec    `json:"grid"`
	Options OptionsSpec `json:"options"`
	Fleet   *FleetSpec  `json:"fleet,omitempty"`

	// Wait, when true, keeps the HTTP request open until the job finishes
	// and returns the result inline; closing the connection cancels the
	// solve. When false the job runs asynchronously and is polled by id.
	Wait bool `json:"wait,omitempty"`
	// ReturnData includes the full reconstructed landscape in the result
	// (grid-size floats); summaries (min/max/stats) are always returned.
	ReturnData bool `json:"return_data,omitempty"`
	// Tag is an optional client label echoed back in job listings.
	Tag string `json:"tag,omitempty"`
}

// ProblemSpec selects a problem Hamiltonian.
type ProblemSpec struct {
	// Kind is one of "maxcut3" (random 3-regular MaxCut), "sk"
	// (Sherrington-Kirkpatrick), "mesh" (mesh MaxCut), "h2", "lih".
	Kind string `json:"kind"`
	// N is the qubit count for maxcut3/sk.
	N int `json:"n,omitempty"`
	// Seed drives random problem construction (maxcut3, sk).
	Seed int64 `json:"seed,omitempty"`
	// Rows, Cols shape the mesh problem.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
}

// NoiseSpec is a depolarizing noise profile.
type NoiseSpec struct {
	Name string  `json:"name,omitempty"`
	P1   float64 `json:"p1"`
	P2   float64 `json:"p2"`
}

// BackendSpec selects the simulated device.
type BackendSpec struct {
	// Kind is one of "analytic" (closed-form depth-1 QAOA), "statevector",
	// "density".
	Kind string `json:"kind"`
	// Ansatz is "qaoa" (default) or "twolocal"; ignored by analytic.
	Ansatz string `json:"ansatz,omitempty"`
	// Depth is the QAOA depth or TwoLocal reps (default 1).
	Depth int `json:"depth,omitempty"`
	// Noise applies a depolarizing profile (analytic damping factors or
	// density-matrix channels). Nil means ideal.
	Noise *NoiseSpec `json:"noise,omitempty"`
	// Shots, when positive, wraps the device with finite-shot sampling
	// noise. Shot-sampled jobs bypass the shared execution cache: their
	// values are stochastic, and freezing one draw would silently turn
	// noise into bias for every later job.
	Shots    int     `json:"shots,omitempty"`
	ShotSeed int64   `json:"shot_seed,omitempty"`
	Spread   float64 `json:"spread,omitempty"`
}

// AxisSpec is one explicit grid axis.
type AxisSpec struct {
	Name string  `json:"name"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

// GridSpec is either the QAOA shorthand (the paper's Table 1 beta/gamma
// grid, optionally at depth p) or an explicit axis list. Reconstruction is
// N-dimensional, so any axis count >= 1 is accepted as long as it matches
// the backend's parameter count.
type GridSpec struct {
	// BetaN, GammaN select the QAOA shorthand grid resolution (per axis).
	BetaN  int `json:"beta_n,omitempty"`
	GammaN int `json:"gamma_n,omitempty"`
	// P is the QAOA depth of the shorthand grid. Omitted or 1 builds the
	// classic 2-axis (beta, gamma) grid; p >= 2 builds the full 2p-axis
	// grid (beta1..betap, gamma1..gammap), each beta axis at BetaN points
	// and each gamma axis at GammaN — pair it with a backend of matching
	// depth. Negative p is rejected, as is combining p with explicit Axes.
	P int `json:"p,omitempty"`
	// Axes overrides the shorthand with explicit axes (any count >= 1;
	// the solver runs a true N-dimensional reconstruction).
	Axes []AxisSpec `json:"axes,omitempty"`
}

// SolverSpec overrides compressed-sensing solver defaults.
type SolverSpec struct {
	Method    string  `json:"method,omitempty"` // fista (default) | ista | omp
	Lambda    float64 `json:"lambda,omitempty"`
	LambdaRel float64 `json:"lambda_rel,omitempty"`
	MaxIter   int     `json:"max_iter,omitempty"`
	Tol       float64 `json:"tol,omitempty"`
}

// OptionsSpec configures the OSCAR pipeline.
type OptionsSpec struct {
	// SamplingFraction is the fraction of grid points to execute, in
	// (0, 1]. Required.
	SamplingFraction float64 `json:"sampling_fraction"`
	// Seed drives parameter sampling.
	Seed int64 `json:"seed,omitempty"`
	// Stratified switches to jittered stratified sampling.
	Stratified bool `json:"stratified,omitempty"`
	// Solver overrides solver defaults.
	Solver *SolverSpec `json:"solver,omitempty"`
}

// FleetDeviceSpec is one virtual device in a fleet job: its latency model,
// failure probability, and an optional adversarial scenario. Every device
// runs the job's backend evaluator — the fleet models where circuits run,
// not what they compute.
type FleetDeviceSpec struct {
	Name string `json:"name,omitempty"`
	// QueueMedian, Sigma, Exec, TailProb, TailFactor parameterize the
	// lognormal + heavy-tail latency model (see qpu.LatencyModel).
	// QueueMedian and Exec must be positive.
	QueueMedian float64 `json:"queue_median"`
	Sigma       float64 `json:"sigma,omitempty"`
	Exec        float64 `json:"exec,omitempty"`
	TailProb    float64 `json:"tail_prob,omitempty"`
	TailFactor  float64 `json:"tail_factor,omitempty"`
	// FailureProb is the per-submission failure probability, in [0,1).
	FailureProb float64 `json:"failure_prob,omitempty"`
	// Scenario injects an adversarial disturbance on this device alone; it
	// composes with (applies after) the fleet-level shared scenario.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
}

// ScenarioSpec selects a deterministic fault-injection scenario (see
// internal/qpu): a perturbation of a device's latency, failure probability,
// or availability as a function of virtual time. Injections are seeded and
// reproducible, so a chaos job reruns bit-identically.
type ScenarioSpec struct {
	// Kind is one of "drift", "dropout", "queue_spikes", "retry_storm".
	Kind string `json:"kind"`
	// Start is when a drift or dropout begins (virtual seconds).
	Start float64 `json:"start,omitempty"`
	// Rate is drift's fractional execution-time growth per second; Max caps
	// the resulting multiplier (0 = the qpu default of 10x).
	Rate float64 `json:"rate,omitempty"`
	Max  float64 `json:"max,omitempty"`
	// Duration is the dropout length, or each queue-spike / retry-storm
	// window's length.
	Duration float64 `json:"duration,omitempty"`
	// Spacing is the mean gap between queue-spike / retry-storm windows
	// (exponentially distributed).
	Spacing float64 `json:"spacing,omitempty"`
	// Factor multiplies queue delay inside a spike window (> 1).
	Factor float64 `json:"factor,omitempty"`
	// Prob is the failure probability inside a storm window, in (0,1].
	Prob float64 `json:"prob,omitempty"`
	// Seed drives the window stream of queue_spikes / retry_storm (0
	// derives one from the fleet seed).
	Seed int64 `json:"seed,omitempty"`
}

// FleetSpec configures fleet-mode execution of a job.
type FleetSpec struct {
	// Devices lists the virtual QPUs (at least one, at most 32).
	Devices []FleetDeviceSpec `json:"devices"`
	// Seed drives the per-device latency streams (default: the job's
	// sampling seed).
	Seed int64 `json:"seed,omitempty"`
	// InitialBatch, MinBatch, MaxBatch, Aggressiveness, Alpha tune the
	// adaptive batch sizing (zero = fleet defaults); FixedBatch disables
	// adaptation and pins every device to that size.
	InitialBatch   int     `json:"initial_batch,omitempty"`
	MinBatch       int     `json:"min_batch,omitempty"`
	MaxBatch       int     `json:"max_batch,omitempty"`
	FixedBatch     int     `json:"fixed_batch,omitempty"`
	Aggressiveness float64 `json:"aggressiveness,omitempty"`
	Alpha          float64 `json:"alpha,omitempty"`
	// Thresholds are coverage fractions in (0,1) at which interim
	// reconstructions run during streaming (default 0.5 and 0.75).
	Thresholds []float64 `json:"thresholds,omitempty"`
	// KeepFraction in (0,1) applies the batch-boundary eager cut.
	KeepFraction float64 `json:"keep_fraction,omitempty"`
	// Scenario injects one shared disturbance across every device — a
	// single scenario instance drives all of them, so window-based kinds
	// (queue_spikes, retry_storm) hit the whole fleet together: the
	// correlated case that defeats purely per-device mitigation.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	// RiskAware enables the robustness policy layer: tail-exposure batch
	// caps, bounded retries with backoff, and quarantine/probation (see
	// fleet.Options). The remaining knobs tune it; zero values take the
	// fleet defaults.
	RiskAware          bool    `json:"risk_aware,omitempty"`
	TailBudget         float64 `json:"tail_budget,omitempty"`
	MaxRetries         int     `json:"max_retries,omitempty"`
	RetryBackoff       float64 `json:"retry_backoff,omitempty"`
	QuarantineAfter    int     `json:"quarantine_after,omitempty"`
	QuarantineFailRate float64 `json:"quarantine_fail_rate,omitempty"`
	QuarantineTailRate float64 `json:"quarantine_tail_rate,omitempty"`
	ProbeBackoff       float64 `json:"probe_backoff,omitempty"`
}

// specError marks a client-side job specification problem (HTTP 400).
type specError struct{ msg string }

func (e *specError) Error() string { return e.msg }

func specErrorf(format string, args ...any) error {
	return &specError{msg: fmt.Sprintf(format, args...)}
}

// builtJob is a validated, executable job: everything runJob needs except
// the server-owned cache and worker budget.
type builtJob struct {
	grid *landscape.Grid
	eval exec.BatchEvaluator
	opts core.Options
	// cacheable is false for stochastic (shot-sampled) devices.
	cacheable bool
	// configKey canonicalizes (problem, backend) so identical jobs share
	// one cache and differently-configured jobs never alias.
	configKey string
	qubits    int
	// fleetDevices and fleetOpts are set for fleet-mode jobs; the
	// scheduler itself is built per run (it owns mutable RNG streams).
	fleetDevices []qpu.Device
	fleetOpts    *fleet.Options
}

// normalize fills spec defaults in place so equivalent specs canonicalize to
// the same configKey.
func (s *JobSpec) normalize() {
	s.Problem.Kind = strings.ToLower(strings.TrimSpace(s.Problem.Kind))
	s.Backend.Kind = strings.ToLower(strings.TrimSpace(s.Backend.Kind))
	s.Backend.Ansatz = strings.ToLower(strings.TrimSpace(s.Backend.Ansatz))
	if s.Backend.Ansatz == "" {
		s.Backend.Ansatz = "qaoa"
	}
	if s.Backend.Depth == 0 {
		s.Backend.Depth = 1
	}
	if s.Backend.Noise != nil && s.Backend.Noise.P1 == 0 && s.Backend.Noise.P2 == 0 {
		s.Backend.Noise = nil
	}
	if s.Backend.Shots == 0 {
		s.Backend.ShotSeed = 0
		s.Backend.Spread = 0
	}
}

func buildProblem(ps ProblemSpec) (*problem.Problem, error) {
	var (
		p   *problem.Problem
		err error
	)
	switch ps.Kind {
	case "maxcut3":
		if ps.N <= 0 {
			return nil, specErrorf("problem: maxcut3 needs n > 0")
		}
		p, err = problem.Random3RegularMaxCut(ps.N, rand.New(rand.NewSource(ps.Seed)))
	case "sk":
		if ps.N <= 0 {
			return nil, specErrorf("problem: sk needs n > 0")
		}
		p, err = problem.SK(ps.N, rand.New(rand.NewSource(ps.Seed)))
	case "mesh":
		p, err = problem.MeshMaxCut(ps.Rows, ps.Cols)
	case "h2":
		return problem.H2(), nil
	case "lih":
		return problem.LiH(), nil
	case "":
		return nil, specErrorf("problem: missing kind")
	default:
		return nil, specErrorf("problem: unknown kind %q (want maxcut3|sk|mesh|h2|lih)", ps.Kind)
	}
	if err != nil {
		// Constructor rejections (odd n for 3-regular graphs, sk size
		// limits, degenerate meshes) are the client's parameters.
		return nil, &specError{msg: err.Error()}
	}
	return p, nil
}

func buildAnsatz(bs BackendSpec, p *problem.Problem) (*ansatz.Ansatz, error) {
	switch bs.Ansatz {
	case "qaoa":
		if p.Graph == nil {
			return nil, specErrorf("backend: qaoa ansatz needs a graph problem, got %q", p.Name)
		}
		return ansatz.QAOA(p.Graph, bs.Depth)
	case "twolocal":
		return ansatz.TwoLocal(p.N(), bs.Depth)
	default:
		return nil, specErrorf("backend: unknown ansatz %q (want qaoa|twolocal)", bs.Ansatz)
	}
}

func buildEvaluator(bs BackendSpec, p *problem.Problem, maxQubits int) (backend.Evaluator, error) {
	prof := noise.Ideal()
	if bs.Noise != nil {
		name := bs.Noise.Name
		if name == "" {
			name = "depolarizing"
		}
		prof = noise.Profile{Name: name, P1: bs.Noise.P1, P2: bs.Noise.P2}
		if err := prof.Validate(); err != nil {
			return nil, specErrorf("backend: %v", err)
		}
	}
	var (
		eval backend.Evaluator
		err  error
	)
	switch bs.Kind {
	case "analytic":
		eval, err = backend.NewAnalyticQAOA(p, prof)
	case "statevector":
		if p.N() > maxQubits {
			return nil, specErrorf("backend: %d qubits exceeds the server limit of %d", p.N(), maxQubits)
		}
		var a *ansatz.Ansatz
		if a, err = buildAnsatz(bs, p); err == nil {
			eval, err = backend.NewStateVector(p, a)
		}
	case "density":
		if p.N() > maxQubits {
			return nil, specErrorf("backend: %d qubits exceeds the server limit of %d", p.N(), maxQubits)
		}
		var a *ansatz.Ansatz
		if a, err = buildAnsatz(bs, p); err == nil {
			eval, err = backend.NewDensity(p, a, prof)
		}
	case "":
		return nil, specErrorf("backend: missing kind")
	default:
		return nil, specErrorf("backend: unknown kind %q (want analytic|statevector|density)", bs.Kind)
	}
	if err != nil {
		if _, ok := err.(*specError); ok {
			return nil, err
		}
		// Constructor errors are misconfigurations (bad depth, too many
		// qubits for density, non-graph problem): the client's fault.
		return nil, &specError{msg: err.Error()}
	}
	if bs.Shots > 0 {
		eval, err = backend.NewWithShots(eval, bs.Shots, bs.Spread, bs.ShotSeed)
		if err != nil {
			return nil, &specError{msg: err.Error()}
		}
	}
	return eval, nil
}

func buildGrid(gs GridSpec, maxPoints int) (*landscape.Grid, error) {
	if gs.P < 0 {
		return nil, specErrorf("grid: p must be >= 1, got %d", gs.P)
	}
	var axes []landscape.Axis
	if len(gs.Axes) > 0 {
		if gs.BetaN != 0 || gs.GammaN != 0 {
			return nil, specErrorf("grid: give either beta_n/gamma_n or axes, not both")
		}
		if gs.P != 0 {
			return nil, specErrorf("grid: p is the QAOA-shorthand depth; give either p or axes, not both")
		}
		for _, a := range gs.Axes {
			if !isFinite(a.Min) || !isFinite(a.Max) {
				return nil, specErrorf("grid: axis %q has non-finite bounds", a.Name)
			}
			axes = append(axes, landscape.Axis{Name: a.Name, Min: a.Min, Max: a.Max, N: a.N})
		}
	} else {
		if gs.BetaN < 2 || gs.GammaN < 2 {
			return nil, specErrorf("grid: beta_n and gamma_n must be >= 2 (or give explicit axes)")
		}
		p := gs.P
		if p == 0 {
			p = 1
		}
		bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(p)
		if p == 1 {
			axes = []landscape.Axis{
				{Name: "beta", Min: bMin, Max: bMax, N: gs.BetaN},
				{Name: "gamma", Min: gMin, Max: gMax, N: gs.GammaN},
			}
		} else {
			for i := 1; i <= p; i++ {
				axes = append(axes, landscape.Axis{Name: fmt.Sprintf("beta%d", i), Min: bMin, Max: bMax, N: gs.BetaN})
			}
			for i := 1; i <= p; i++ {
				axes = append(axes, landscape.Axis{Name: fmt.Sprintf("gamma%d", i), Min: gMin, Max: gMax, N: gs.GammaN})
			}
		}
	}
	// Reject oversized grids before allocating anything: the axis counts
	// multiply, so check with overflow care.
	points := 1
	for _, a := range axes {
		if a.N < 2 {
			return nil, specErrorf("grid: axis %q needs n >= 2, got %d", a.Name, a.N)
		}
		if points > maxPoints/a.N {
			return nil, specErrorf("grid: more than the maximum %d points", maxPoints)
		}
		points *= a.N
	}
	g, err := landscape.NewGrid(axes...)
	if err != nil {
		return nil, &specError{msg: err.Error()}
	}
	return g, nil
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func buildSolver(ss *SolverSpec) (cs.Options, error) {
	opt := cs.DefaultOptions()
	if ss == nil {
		return opt, nil
	}
	switch strings.ToLower(ss.Method) {
	case "", "fista":
		opt.Method = cs.FISTA
	case "ista":
		opt.Method = cs.ISTA
	case "omp":
		opt.Method = cs.OMP
	default:
		return opt, specErrorf("solver: unknown method %q (want fista|ista|omp)", ss.Method)
	}
	if ss.Lambda < 0 || ss.LambdaRel < 0 || ss.Tol < 0 || ss.MaxIter < 0 {
		return opt, specErrorf("solver: negative solver parameters")
	}
	if ss.Lambda > 0 {
		opt.Lambda = ss.Lambda
	}
	if ss.LambdaRel > 0 {
		opt.LambdaRel = ss.LambdaRel
	}
	if ss.MaxIter > 0 {
		opt.MaxIter = ss.MaxIter
	}
	if ss.Tol > 0 {
		opt.Tol = ss.Tol
	}
	return opt, nil
}

// maxFleetDevices bounds the device list of a fleet job.
const maxFleetDevices = 32

// buildScenario validates a ScenarioSpec and instantiates the qpu scenario.
// where prefixes error messages ("fleet" or the device). defaultSeed seeds
// window-based scenarios when the spec leaves Seed zero.
func buildScenario(ss *ScenarioSpec, where string, defaultSeed int64) (qpu.Scenario, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"start", ss.Start}, {"rate", ss.Rate}, {"max", ss.Max},
		{"duration", ss.Duration}, {"spacing", ss.Spacing},
		{"factor", ss.Factor}, {"prob", ss.Prob},
	} {
		if !isFinite(p.v) || p.v < 0 {
			return nil, specErrorf("%s: scenario %s %g is not a non-negative number", where, p.name, p.v)
		}
	}
	seed := ss.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	switch strings.ToLower(ss.Kind) {
	case "drift":
		if ss.Rate <= 0 {
			return nil, specErrorf("%s: drift scenario needs rate > 0", where)
		}
		return qpu.Drift{Start: ss.Start, Rate: ss.Rate, Max: ss.Max}, nil
	case "dropout":
		if ss.Duration <= 0 {
			return nil, specErrorf("%s: dropout scenario needs duration > 0", where)
		}
		return qpu.Dropout{Start: ss.Start, Duration: ss.Duration}, nil
	case "queue_spikes":
		if ss.Spacing <= 0 || ss.Duration <= 0 {
			return nil, specErrorf("%s: queue_spikes scenario needs spacing > 0 and duration > 0", where)
		}
		if ss.Factor <= 1 {
			return nil, specErrorf("%s: queue_spikes scenario needs factor > 1, got %g", where, ss.Factor)
		}
		return qpu.NewQueueSpikes(seed, ss.Spacing, ss.Duration, ss.Factor), nil
	case "retry_storm":
		if ss.Spacing <= 0 || ss.Duration <= 0 {
			return nil, specErrorf("%s: retry_storm scenario needs spacing > 0 and duration > 0", where)
		}
		if ss.Prob <= 0 || ss.Prob > 1 {
			return nil, specErrorf("%s: retry_storm scenario needs prob in (0,1], got %g", where, ss.Prob)
		}
		return qpu.NewRetryStorm(seed, ss.Spacing, ss.Duration, ss.Prob), nil
	case "":
		return nil, specErrorf("%s: scenario missing kind", where)
	default:
		return nil, specErrorf("%s: unknown scenario kind %q (want drift|dropout|queue_spikes|retry_storm)", where, ss.Kind)
	}
}

// buildFleet validates a FleetSpec and assembles the device list and
// scheduler options (sans the server-owned cache and progress hook).
func buildFleet(fs *FleetSpec, eval backend.Evaluator, samplingSeed int64) ([]qpu.Device, *fleet.Options, error) {
	if len(fs.Devices) == 0 {
		return nil, nil, specErrorf("fleet: needs at least one device")
	}
	if len(fs.Devices) > maxFleetDevices {
		return nil, nil, specErrorf("fleet: %d devices exceeds the limit of %d", len(fs.Devices), maxFleetDevices)
	}
	seed := fs.Seed
	if seed == 0 {
		seed = samplingSeed
	}
	// One shared instance drives every device, which is what makes the
	// disturbances correlated; per-device scenarios compose on top of it.
	var shared qpu.Scenario
	if fs.Scenario != nil {
		var err error
		if shared, err = buildScenario(fs.Scenario, "fleet", seed+1789); err != nil {
			return nil, nil, err
		}
	}
	devices := make([]qpu.Device, len(fs.Devices))
	seen := make(map[string]struct{}, len(fs.Devices))
	for i, ds := range fs.Devices {
		name := ds.Name
		if name == "" {
			name = fmt.Sprintf("qpu-%d", i)
		}
		// Names key the result's batch_sizes/jobs_per_device maps and the
		// /metrics gauges; duplicates would silently collapse entries.
		if _, dup := seen[name]; dup {
			return nil, nil, specErrorf("fleet: duplicate device name %q", name)
		}
		seen[name] = struct{}{}
		// Reject degenerate latency models and failure probabilities at
		// submission: a zero queue or exec time silently models a free
		// device, and a failure probability of 1 can never complete a job.
		if !isFinite(ds.QueueMedian) || ds.QueueMedian <= 0 {
			return nil, nil, specErrorf("fleet: device %q needs queue_median > 0, got %g", name, ds.QueueMedian)
		}
		if !isFinite(ds.Exec) || ds.Exec <= 0 {
			return nil, nil, specErrorf("fleet: device %q needs exec > 0, got %g", name, ds.Exec)
		}
		if !isFinite(ds.FailureProb) || ds.FailureProb < 0 || ds.FailureProb >= 1 {
			return nil, nil, specErrorf("fleet: device %q failure_prob %g out of [0,1)", name, ds.FailureProb)
		}
		scenario := shared
		if ds.Scenario != nil {
			own, err := buildScenario(ds.Scenario, fmt.Sprintf("fleet: device %q", name), seed+1789+int64(i+1))
			if err != nil {
				return nil, nil, err
			}
			if scenario != nil {
				scenario = qpu.Compose(shared, own)
			} else {
				scenario = own
			}
		}
		devices[i] = qpu.Device{
			Name: name,
			Eval: eval,
			Latency: qpu.LatencyModel{
				QueueMedian: ds.QueueMedian,
				Sigma:       ds.Sigma,
				Exec:        ds.Exec,
				TailProb:    ds.TailProb,
				TailFactor:  ds.TailFactor,
			},
			FailureProb: ds.FailureProb,
			Scenario:    scenario,
		}
	}
	thresholds := fs.Thresholds
	if thresholds == nil {
		thresholds = []float64{0.5, 0.75}
	}
	opts := &fleet.Options{
		Seed:           seed,
		InitialBatch:   fs.InitialBatch,
		MinBatch:       fs.MinBatch,
		MaxBatch:       fs.MaxBatch,
		FixedBatch:     fs.FixedBatch,
		Aggressiveness: fs.Aggressiveness,
		Alpha:          fs.Alpha,
		Thresholds:     thresholds,
		KeepFraction:   fs.KeepFraction,

		RiskAware:          fs.RiskAware,
		TailBudget:         fs.TailBudget,
		MaxRetries:         fs.MaxRetries,
		RetryBackoff:       fs.RetryBackoff,
		QuarantineAfter:    fs.QuarantineAfter,
		QuarantineFailRate: fs.QuarantineFailRate,
		QuarantineTailRate: fs.QuarantineTailRate,
		ProbeBackoff:       fs.ProbeBackoff,
	}
	// Dry-build a scheduler so every option and latency-model rejection
	// surfaces at submission as a 400, not at run time.
	if _, err := fleet.New(*opts, devices...); err != nil {
		return nil, nil, &specError{msg: err.Error()}
	}
	return devices, opts, nil
}

// buildJob validates a spec against the server limits and assembles the
// executable job. All validation errors are *specError (HTTP 400).
func buildJob(spec *JobSpec, cfg Config) (*builtJob, error) {
	spec.normalize()
	prob, err := buildProblem(spec.Problem)
	if err != nil {
		return nil, err
	}
	eval, err := buildEvaluator(spec.Backend, prob, cfg.MaxQubits)
	if err != nil {
		return nil, err
	}
	grid, err := buildGrid(spec.Grid, cfg.MaxGridPoints)
	if err != nil {
		return nil, err
	}
	if want := eval.NumParams(); len(grid.Axes) != want {
		return nil, specErrorf("grid: %d axes but backend %q expects %d parameters",
			len(grid.Axes), eval.Name(), want)
	}
	if f := spec.Options.SamplingFraction; f <= 0 || f > 1 || math.IsNaN(f) {
		return nil, specErrorf("options: sampling_fraction %g out of (0,1]", f)
	}
	solver, err := buildSolver(spec.Options.Solver)
	if err != nil {
		return nil, err
	}
	key, err := json.Marshal(struct {
		Problem ProblemSpec `json:"problem"`
		Backend BackendSpec `json:"backend"`
	}{spec.Problem, spec.Backend})
	if err != nil {
		return nil, err
	}
	built := &builtJob{
		grid: grid,
		eval: exec.FromEvaluator(eval),
		opts: core.Options{
			SamplingFraction: spec.Options.SamplingFraction,
			Seed:             spec.Options.Seed,
			Stratified:       spec.Options.Stratified,
			Solver:           solver,
		},
		cacheable: spec.Backend.Shots == 0,
		configKey: string(key),
		qubits:    prob.N(),
	}
	if spec.Fleet != nil {
		built.fleetDevices, built.fleetOpts, err = buildFleet(spec.Fleet, eval, spec.Options.Seed)
		if err != nil {
			return nil, err
		}
	}
	return built, nil
}
