// Package oscar is the public API of this OSCAR reproduction — compressed-
// sensing based cost-landscape reconstruction for debugging and tuning
// variational quantum algorithms (Liu, Hao, Tannu; ISCA 2023).
//
// The typical workflow is:
//
//	prob, _ := oscar.Random3RegularMaxCut(16, rng)     // pick a problem
//	eval, _ := oscar.NewAnalyticQAOA(prob, oscar.IdealNoise()) // pick a device
//	grid, _ := oscar.QAOAGrid(1, 50, 100)              // Table 1 grid
//	recon, stats, _ := oscar.Reconstruct(grid, eval.Evaluate, oscar.Options{
//		SamplingFraction: 0.05, Seed: 1,
//	})
//
// recon is the full 50x100 landscape recovered from 5% of the circuit
// executions; stats.Speedup reports the 20x saving. The sub-packages it
// re-exports implement every substrate from scratch: state-vector and
// density-matrix simulators, problem Hamiltonians and ansatzes, FFT/DCT and
// l1 solvers, classical optimizers, noise mitigation, multi-QPU scheduling,
// and the noise-compensation model.
//
// For service deployments, cmd/oscard wraps this pipeline in a long-running
// HTTP job server (internal/service) with a bounded worker pool and shared
// per-configuration execution caches; see the README's "Running as a
// service" section.
package oscar

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/ansatz"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/interp"
	"repro/internal/landscape"
	"repro/internal/mitigation"
	"repro/internal/ncm"
	"repro/internal/noise"
	"repro/internal/optimizer"
	"repro/internal/problem"
	"repro/internal/qpu"
)

// Core workflow types.
type (
	// Options configures a reconstruction (sampling fraction, seed,
	// solver settings).
	Options = core.Options
	// Stats reports reconstruction cost and solver diagnostics.
	Stats = core.Stats
	// Landscape is a dense cost landscape over a parameter grid.
	Landscape = landscape.Landscape
	// Grid is a Cartesian parameter grid.
	Grid = landscape.Grid
	// Axis is one grid dimension.
	Axis = landscape.Axis
	// EvalFunc computes a cost at a parameter vector.
	EvalFunc = landscape.EvalFunc
	// Evaluator is a named cost evaluator (a simulated QPU).
	Evaluator = backend.Evaluator
	// Problem couples a cost Hamiltonian with metadata.
	Problem = problem.Problem
	// Ansatz is a parameterized circuit family instance.
	Ansatz = ansatz.Ansatz
	// NoiseProfile describes device error rates.
	NoiseProfile = noise.Profile
	// SolverOptions configures the compressed-sensing solver.
	SolverOptions = cs.Options
	// OptimizerResult reports an optimization run.
	OptimizerResult = optimizer.Result
	// NCModel is a fitted noise-compensation model.
	NCModel = ncm.Model
	// Bicubic is an interpolated 2-D landscape surface, the paper's
	// rectangular bivariate spline. It satisfies Interpolator (Arity 2)
	// and remains the fast path Interpolate picks for 2-axis landscapes.
	Bicubic = interp.Bicubic
	// NDSpline is an interpolated N-dimensional landscape surface — the
	// tensor-product cubic spline Interpolate fits when a landscape has
	// more (or fewer) than 2 axes, e.g. the 2p axes of depth-p QAOA. On
	// 2-axis grids it agrees with Bicubic bit for bit.
	NDSpline = interp.NDSpline
)

// Interpolator is a continuously queryable surrogate of a reconstructed
// landscape, independent of its dimensionality. Bicubic (2-D fast path) and
// NDSpline (any arity) both satisfy it; Interpolate picks between them by
// the landscape's axis count. Beyond pointwise AtPoint/GradientAt it carries
// the allocation-free batch read path — AtPoints/GradientAtPoints evaluate
// whole batches sharded across workers, bit-identically to pointwise calls
// for every worker count. Out-of-domain queries clamp to the grid hull on
// every method: the surrogate never extrapolates beyond the fitted data.
type Interpolator = interp.Interpolator

// Landscape artifacts: the self-describing persisted form of a landscape —
// format-versioned, checksummed, carrying grid axes, problem/backend
// fingerprint, solver provenance, and reconstruction quality. Artifacts are
// what oscard's /landscapes store publishes and serves; the same files load
// anywhere via LoadArtifact.
type (
	// Artifact is a persisted landscape with provenance and a content
	// checksum; its ID() is a stable content address.
	Artifact = landscape.Artifact
	// ArtifactSolverMeta records how an artifact's data was produced.
	ArtifactSolverMeta = landscape.SolverMeta
)

// ArtifactVersion is the current on-disk artifact format version.
const ArtifactVersion = landscape.ArtifactVersion

// ErrBadArtifact marks a truncated, corrupt, or unknown-version artifact;
// errors from LoadArtifact wrap it.
var ErrBadArtifact = landscape.ErrBadArtifact

// NewArtifact wraps a landscape in an artifact with unknown NRMSE; fill
// Fingerprint, Solver, and CreatedAt as provenance is known.
func NewArtifact(l *Landscape) *Artifact { return landscape.NewArtifact(l) }

// SaveArtifact writes an artifact in the versioned, checksummed format.
func SaveArtifact(w io.Writer, a *Artifact) error { return landscape.SaveArtifact(w, a) }

// LoadArtifact reads an artifact written by SaveArtifact — or a legacy
// bare-JSON landscape — verifying version, shape, and checksum; damaged
// input fails with an error wrapping ErrBadArtifact.
func LoadArtifact(r io.Reader) (*Artifact, error) { return landscape.LoadArtifact(r) }

// SaveArtifactFile writes an artifact to path atomically (temp file +
// rename), so readers never see a torn artifact.
func SaveArtifactFile(path string, a *Artifact) error { return landscape.SaveArtifactFile(path, a) }

// LoadArtifactFile reads an artifact from path.
func LoadArtifactFile(path string) (*Artifact, error) { return landscape.LoadArtifactFile(path) }

// Batched execution engine types. Every evaluation fan-out in the library —
// landscape scans, reconstruction sampling, optimizer stencils, ZNE sweeps,
// the QPU fleet — runs on this engine.
type (
	// BatchEvaluator computes costs for whole batches of parameter
	// vectors, with cancellation.
	BatchEvaluator = exec.BatchEvaluator
	// Engine is the chunking, cache-backed worker pool.
	Engine = exec.Engine
	// EngineOptions configures workers, chunk size, and the cache.
	EngineOptions = exec.Options
	// EvalCache memoizes executions by quantized parameter vector.
	EvalCache = exec.Cache
)

// NewEngine builds a batched execution engine around any batch evaluator.
func NewEngine(inner BatchEvaluator, opt EngineOptions) *Engine { return exec.New(inner, opt) }

// NewEvalCache builds a memoizing execution cache (quantum <= 0 selects the
// default parameter quantization). Parameter vectors with non-finite or
// out-of-range coordinates bypass the cache, and Snapshot/Restore spill the
// memoized executions to disk for warm-starts across processes.
func NewEvalCache(quantum float64) *EvalCache { return exec.NewCache(quantum) }

// Batch lifts an Evaluator into a BatchEvaluator, using its native batch
// implementation when it has one (all built-in evaluators do).
func Batch(e Evaluator) BatchEvaluator { return exec.FromEvaluator(e) }

// BatchFunc lifts a point evaluation function into a BatchEvaluator.
func BatchFunc(eval EvalFunc) BatchEvaluator { return exec.Lift(eval) }

// Reconstruct runs the OSCAR pipeline: random sampling, parallel execution,
// compressed-sensing reconstruction.
func Reconstruct(g *Grid, eval EvalFunc, opt Options) (*Landscape, *Stats, error) {
	return core.Reconstruct(g, eval, opt)
}

// ReconstructContext is Reconstruct with cancellation threaded through the
// circuit-execution phase.
func ReconstructContext(ctx context.Context, g *Grid, eval EvalFunc, opt Options) (*Landscape, *Stats, error) {
	return core.ReconstructContext(ctx, g, eval, opt)
}

// ReconstructBatch runs the OSCAR pipeline with circuit execution submitted
// through the batched engine — the entry point for native batch backends
// and cache-backed runs.
func ReconstructBatch(ctx context.Context, g *Grid, be BatchEvaluator, opt Options) (*Landscape, *Stats, error) {
	return core.ReconstructBatch(ctx, g, be, opt)
}

// ReconstructFromSamples reconstructs from already-measured values.
func ReconstructFromSamples(g *Grid, idx []int, values []float64, opt Options) (*Landscape, *Stats, error) {
	return core.ReconstructFromSamples(g, idx, values, opt)
}

// ReconstructFromSamplesContext is ReconstructFromSamples with cancellation
// threaded through the sharded solver.
func ReconstructFromSamplesContext(ctx context.Context, g *Grid, idx []int, values []float64, opt Options) (*Landscape, *Stats, error) {
	return core.ReconstructFromSamplesContext(ctx, g, idx, values, opt)
}

// Sharded reconstruction types. The solver phase — FISTA over the 2-D DCT —
// shards its row/column transforms and vector kernels across a worker pool
// (Options.Workers / SolverOptions.Workers), bit-identically to a serial
// solve, and ReconstructMany solves whole fleets of independent landscapes
// concurrently.
type (
	// ReconJob is one independent reconstruction (rows, cols, sampled
	// indices, measured values, solver options).
	ReconJob = cs.Job
	// ReconJobResult pairs a ReconJob's result with its error.
	ReconJobResult = cs.JobResult
)

// ReconstructMany solves independent reconstruction jobs concurrently with
// per-job error isolation; results are index-aligned with jobs. A canceled
// ctx stops in-flight solves and marks unfinished jobs with ctx.Err().
func ReconstructMany(ctx context.Context, jobs ...ReconJob) []ReconJobResult {
	return cs.ReconstructMany(ctx, jobs...)
}

// GenerateDense runs the full grid search OSCAR replaces (ground truth).
func GenerateDense(g *Grid, eval EvalFunc, workers int) (*Landscape, error) {
	return landscape.Generate(g, eval, workers)
}

// GenerateDenseBatch is GenerateDense through the batched engine, with
// cancellation.
func GenerateDenseBatch(ctx context.Context, g *Grid, be BatchEvaluator, workers int) (*Landscape, error) {
	return landscape.GenerateBatch(ctx, g, be, workers)
}

// NewGrid builds a parameter grid.
func NewGrid(axes ...Axis) (*Grid, error) { return landscape.NewGrid(axes...) }

// QAOAGrid builds the paper's Table 1 (beta, gamma) grid for depth-p QAOA
// with the given axis resolutions.
func QAOAGrid(p, betaN, gammaN int) (*Grid, error) {
	bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(p)
	return landscape.NewGrid(
		landscape.Axis{Name: "beta", Min: bMin, Max: bMax, N: betaN},
		landscape.Axis{Name: "gamma", Min: gMin, Max: gMax, N: gammaN},
	)
}

// QAOAGridP builds the full 2p-axis parameter grid for depth-p QAOA:
// axes beta1..betap (resolution betaN each) followed by gamma1..gammap
// (resolution gammaN each), matching the ansatz's [betas..., gammas...]
// parameter order. For p == 1 it returns exactly QAOAGrid's classic 2-axis
// (beta, gamma) grid, so existing depth-1 code can migrate without change.
// Unlike QAOAGrid — whose 2 axes stand for a landscape *slice* at any depth —
// the grid spans every circuit parameter, which is what ND reconstruction
// (cs.ReconstructND via Reconstruct) and surrogate descent need for p > 1.
func QAOAGridP(p, betaN, gammaN int) (*Grid, error) {
	if p < 1 {
		return nil, fmt.Errorf("oscar: QAOA depth %d < 1", p)
	}
	if p == 1 {
		return QAOAGrid(1, betaN, gammaN)
	}
	bMin, bMax, gMin, gMax := ansatz.QAOAGridAxes(p)
	axes := make([]Axis, 0, 2*p)
	for i := 1; i <= p; i++ {
		axes = append(axes, Axis{Name: fmt.Sprintf("beta%d", i), Min: bMin, Max: bMax, N: betaN})
	}
	for i := 1; i <= p; i++ {
		axes = append(axes, Axis{Name: fmt.Sprintf("gamma%d", i), Min: gMin, Max: gMax, N: gammaN})
	}
	return landscape.NewGrid(axes...)
}

// NRMSE is the paper's reconstruction-error metric (Equation 1).
func NRMSE(truth, recon *Landscape) (float64, error) {
	return landscape.NRMSE(truth.Data, recon.Data)
}

// Problems.

// Random3RegularMaxCut builds MaxCut on a random 3-regular graph.
func Random3RegularMaxCut(n int, rng *rand.Rand) (*Problem, error) {
	return problem.Random3RegularMaxCut(n, rng)
}

// MeshMaxCut builds MaxCut on a rows x cols mesh graph.
func MeshMaxCut(rows, cols int) (*Problem, error) { return problem.MeshMaxCut(rows, cols) }

// SKProblem builds a Sherrington-Kirkpatrick instance.
func SKProblem(n int, rng *rand.Rand) (*Problem, error) { return problem.SK(n, rng) }

// H2 returns the 2-qubit hydrogen Hamiltonian.
func H2() *Problem { return problem.H2() }

// LiH returns the 4-qubit lithium-hydride-like Hamiltonian.
func LiH() *Problem { return problem.LiH() }

// Ansatzes.

// QAOAAnsatz builds the depth-p QAOA circuit for a graph problem.
func QAOAAnsatz(p *Problem, depth int) (*Ansatz, error) { return ansatz.QAOA(p.Graph, depth) }

// TwoLocalAnsatz builds the hardware-efficient Two-local ansatz.
func TwoLocalAnsatz(n, reps int) (*Ansatz, error) { return ansatz.TwoLocal(n, reps) }

// UCCSDH2Ansatz builds the 3-parameter UCCSD-style H2 ansatz.
func UCCSDH2Ansatz() (*Ansatz, error) { return ansatz.UCCSDH2() }

// UCCSDLiHAnsatz builds the 8-parameter UCCSD-style LiH ansatz.
func UCCSDLiHAnsatz() (*Ansatz, error) { return ansatz.UCCSDLiH() }

// Evaluators (simulated QPUs).

// NewStateVector builds the exact ideal evaluator. It runs on the
// zero-allocation simulator engine: circuits re-run into pooled scratch
// states, diagonal Hamiltonians (MaxCut, SK) evaluate against the problem's
// cached energy table in one fused pass, and batch submissions reuse
// buffers across every point.
func NewStateVector(p *Problem, a *Ansatz) (Evaluator, error) { return backend.NewStateVector(p, a) }

// NewStateVectorWorkers is NewStateVector with a worker budget for direct
// batch submissions (0 = GOMAXPROCS): large batches shard deterministically
// across points, small batches of large states shard each gate kernel over
// amplitude ranges — bit-identical to a serial run either way. Evaluators
// driven through an Engine should use NewStateVector and let the engine's
// Workers option do the fan-out instead.
func NewStateVectorWorkers(p *Problem, a *Ansatz, workers int) (Evaluator, error) {
	sv, err := backend.NewStateVector(p, a)
	if err != nil {
		return nil, err
	}
	return sv.SetWorkers(workers), nil
}

// NewDensity builds the exact noisy evaluator (<= 13 qubits), with the same
// buffer-reuse treatment as NewStateVector applied to its 4^n matrices.
func NewDensity(p *Problem, a *Ansatz, prof NoiseProfile) (Evaluator, error) {
	return backend.NewDensity(p, a, prof)
}

// NewDensityWorkers is NewDensity with a worker budget for direct batch
// submissions (0 = GOMAXPROCS); see NewStateVectorWorkers.
func NewDensityWorkers(p *Problem, a *Ansatz, prof NoiseProfile, workers int) (Evaluator, error) {
	dm, err := backend.NewDensity(p, a, prof)
	if err != nil {
		return nil, err
	}
	return dm.SetWorkers(workers), nil
}

// NewAnalyticQAOA builds the closed-form depth-1 QAOA evaluator.
func NewAnalyticQAOA(p *Problem, prof NoiseProfile) (*backend.AnalyticQAOA, error) {
	return backend.NewAnalyticQAOA(p, prof)
}

// WithShots wraps an evaluator with finite-shot sampling noise.
func WithShots(inner Evaluator, shots int, spread float64, seed int64) (Evaluator, error) {
	return backend.NewWithShots(inner, shots, spread, seed)
}

// Noise profiles.

// IdealNoise is the noise-free device profile.
func IdealNoise() NoiseProfile { return noise.Ideal() }

// DepolarizingNoise builds a depolarizing profile with the given one- and
// two-qubit error rates.
func DepolarizingNoise(name string, p1, p2 float64) NoiseProfile {
	return NoiseProfile{Name: name, P1: p1, P2: p2}
}

// Interpolation and optimization on reconstructed landscapes.

// Interpolate fits a continuously queryable spline surrogate to a
// reconstructed landscape of any dimensionality. A 2-axis landscape gets the
// paper's rectangular bivariate spline (Bicubic — bit-identical to the
// historical 2-D-only Interpolate); any other axis count gets the
// tensor-product NDSpline, so p>1 QAOA landscapes interpolate the same way.
func Interpolate(l *Landscape) (Interpolator, error) {
	axes := make([][]float64, len(l.Grid.Axes))
	for i, a := range l.Grid.Axes {
		axes[i] = a.Values()
	}
	return interp.Fit(axes, l.Data)
}

// InterpolatedObjective adapts an interpolated landscape into an optimizer
// objective (an instant, QPU-free cost query) for any arity.
func InterpolatedObjective(ip Interpolator) optimizer.Objective {
	return func(x []float64) (float64, error) {
		if len(x) != ip.Arity() {
			return 0, fmt.Errorf("oscar: interpolated objective needs %d parameters, got %d", ip.Arity(), len(x))
		}
		return ip.AtPoint(x), nil
	}
}

// SurrogateOptions configures OptimizeOnSurrogate.
type SurrogateOptions struct {
	// Recon configures the reconstruction phase (sampling fraction, seed,
	// workers, solver). SamplingFraction is required, as in Reconstruct.
	Recon Options
	// Method selects the descent algorithm on the surrogate: "adam"
	// (default) or "cobyla".
	Method string
	// ADAM configures the ADAM descent; zero values take the optimizer's
	// defaults, and empty Bounds default to the grid's axis ranges.
	ADAM optimizer.ADAMOptions
	// Cobyla configures the COBYLA descent when Method == "cobyla"; empty
	// Bounds default to the grid's axis ranges.
	Cobyla optimizer.CobylaOptions
	// Start optionally fixes the descent's starting point. When nil the
	// descent starts from the reconstructed landscape's minimum grid
	// point — the coarse-to-fine handoff OSCAR's Section 7 workflow uses.
	Start []float64
}

// SurrogateResult reports every artifact of a surrogate-descent run.
type SurrogateResult struct {
	// Landscape is the reconstructed coarse landscape.
	Landscape *Landscape
	// Stats carries the reconstruction's cost and solver diagnostics.
	Stats *Stats
	// Surrogate is the continuously queryable interpolant the descent ran
	// on (Bicubic for 2 axes, NDSpline otherwise).
	Surrogate Interpolator
	// Optimum is the descent's outcome; Optimum.X is the refined
	// parameter vector.
	Optimum *OptimizerResult
}

// OptimizeOnSurrogate closes the OSCAR loop for any QAOA depth: reconstruct
// a coarse landscape from a small sample of circuit executions, interpolate
// it, then descend on the interpolated surrogate — which costs zero further
// quantum evaluations — to refine the optimum to continuous parameters. The
// grid's dimensionality is unrestricted: a QAOAGridP(p, ...) grid runs the
// whole pipeline at depth p through ND reconstruction and NDSpline
// interpolation, while classic 2-axis grids keep the Bicubic fast path.
func OptimizeOnSurrogate(ctx context.Context, g *Grid, be BatchEvaluator, opt SurrogateOptions) (*SurrogateResult, error) {
	l, stats, err := core.ReconstructBatch(ctx, g, be, opt.Recon)
	if err != nil {
		return nil, err
	}
	ip, err := Interpolate(l)
	if err != nil {
		return nil, err
	}
	start := opt.Start
	if start == nil {
		_, argMin := l.Min()
		if argMin < 0 {
			return nil, fmt.Errorf("oscar: reconstructed landscape has no finite values")
		}
		start = l.Grid.Point(argMin)
	}
	if len(start) != ip.Arity() {
		return nil, fmt.Errorf("oscar: start point has %d parameters, grid has %d axes", len(start), ip.Arity())
	}
	bounds := make([]optimizer.Bounds, len(g.Axes))
	for i, a := range g.Axes {
		bounds[i] = optimizer.Bounds{Lo: a.Min, Hi: a.Max}
	}
	obj := InterpolatedObjective(ip)
	var res *OptimizerResult
	switch opt.Method {
	case "", "adam":
		ao := opt.ADAM
		if ao.Bounds == nil {
			ao.Bounds = bounds
		}
		res, err = optimizer.ADAM(obj, start, ao)
	case "cobyla":
		co := opt.Cobyla
		if co.Bounds == nil {
			co.Bounds = bounds
		}
		res, err = optimizer.Cobyla(obj, start, co)
	default:
		return nil, fmt.Errorf("oscar: unknown surrogate method %q", opt.Method)
	}
	if err != nil {
		return nil, err
	}
	return &SurrogateResult{Landscape: l, Stats: stats, Surrogate: ip, Optimum: res}, nil
}

// RunADAM minimizes an objective with ADAM (finite-difference gradients).
func RunADAM(f optimizer.Objective, x0 []float64, opt optimizer.ADAMOptions) (*OptimizerResult, error) {
	return optimizer.ADAM(f, x0, opt)
}

// RunADAMBatch is RunADAM with each full gradient stencil (2n probes)
// submitted to the objective as a single batch — one QPU job per step.
func RunADAMBatch(f optimizer.BatchObjective, x0 []float64, opt optimizer.ADAMOptions) (*OptimizerResult, error) {
	return optimizer.ADAMBatch(f, x0, opt)
}

// EngineObjective adapts a batch evaluator into a batch optimizer objective,
// so gradient stencils run through the engine (and its cache) as one batch.
func EngineObjective(ctx context.Context, be BatchEvaluator) optimizer.BatchObjective {
	return func(xs [][]float64) ([]float64, error) { return be.EvaluateBatch(ctx, xs) }
}

// RunCobyla minimizes an objective with the COBYLA-style trust-region
// method.
func RunCobyla(f optimizer.Objective, x0 []float64, opt optimizer.CobylaOptions) (*OptimizerResult, error) {
	return optimizer.Cobyla(f, x0, opt)
}

// FitNCM trains a noise-compensation model from paired device measurements.
func FitNCM(source, reference []float64) (*NCModel, error) { return ncm.Fit(source, reference) }

// NewZNE wraps a noise-scalable evaluator with zero-noise extrapolation.
func NewZNE(inner mitigation.ScalableEvaluator, scales []float64, model mitigation.Extrapolation) (Evaluator, error) {
	return mitigation.NewZNE(inner, scales, model)
}

// Multi-QPU execution.

// NewExecutor builds a virtual-time multi-QPU executor.
func NewExecutor(seed int64, devices ...qpu.Device) (*qpu.Executor, error) {
	return qpu.NewExecutor(seed, devices...)
}

// Device couples an evaluator with a latency model.
type Device = qpu.Device

// DefaultLatency is a cloud-QPU-like latency model.
func DefaultLatency() qpu.LatencyModel { return qpu.DefaultLatency() }

// Fleet scheduling. The fleet scheduler dispatches landscape sampling across
// a heterogeneous device fleet, learning per-device batch sizes online from
// observed queue/execution latency ratios, and streams completed batches
// into an incremental, warm-started reconstruction with an optional
// batch-boundary eager cut. Runs are bit-reproducible for a fixed seed
// across worker counts.
type (
	// FleetScheduler dispatches sampling across devices with adaptive
	// batch sizes.
	FleetScheduler = fleet.Scheduler
	// FleetOptions configures adaptation, streaming thresholds, the eager
	// cut, and the shared execution cache.
	FleetOptions = fleet.Options
	// FleetStreamResult is the outcome of a streaming fleet run.
	FleetStreamResult = fleet.StreamResult
	// FleetProgress is the live view passed to OnProgress.
	FleetProgress = fleet.Progress
	// FleetDeviceState is one device's learned scheduling state.
	FleetDeviceState = fleet.DeviceState
	// BatchGroup records one batch submission's latency decomposition and
	// completion time.
	BatchGroup = qpu.BatchGroup
)

// NewFleet builds an adaptive fleet scheduler over the given devices.
func NewFleet(opt FleetOptions, devices ...Device) (*FleetScheduler, error) {
	return fleet.New(opt, devices...)
}

// Fault injection and risk-aware scheduling. A Scenario perturbs a device's
// latency, failure probability, or availability as a function of virtual
// time — deterministic, seeded chaos for validating schedulers against
// adversarial device behavior. Sharing one scenario instance across several
// devices correlates their disturbances. FleetOptions.RiskAware enables the
// robustness policy layer: tail-exposure batch caps, bounded retries with
// backoff, and quarantine/probation for persistently failing devices.
type (
	// Scenario perturbs a device's condition over virtual time.
	Scenario = qpu.Scenario
	// Condition is a device's effective behavior at one instant.
	Condition = qpu.Condition
	// Drift ramps execution time linearly, as between calibrations.
	Drift = qpu.Drift
	// Dropout takes a device dark for one window of virtual time.
	Dropout = qpu.Dropout
	// QueueSpikes multiplies queue delay during seeded windows.
	QueueSpikes = qpu.QueueSpikes
	// RetryStorm raises failure probability during seeded windows.
	RetryStorm = qpu.RetryStorm
	// QuarantineEvent records one bench or re-admit transition of a
	// risk-aware run.
	QuarantineEvent = fleet.QuarantineEvent
)

// NewQueueSpikes builds a congestion-burst scenario: windows of the given
// duration recur with exponentially distributed gaps of mean spacing,
// multiplying queue delay by factor while active.
func NewQueueSpikes(seed int64, spacing, duration, factor float64) *QueueSpikes {
	return qpu.NewQueueSpikes(seed, spacing, duration, factor)
}

// NewRetryStorm builds a transient-failure-burst scenario: windows of the
// given duration recur with exponentially distributed gaps of mean spacing,
// raising failure probability to prob while active.
func NewRetryStorm(seed int64, spacing, duration, prob float64) *RetryStorm {
	return qpu.NewRetryStorm(seed, spacing, duration, prob)
}

// ComposeScenarios chains scenarios: each one's perturbation feeds the next.
func ComposeScenarios(scenarios ...Scenario) Scenario {
	return qpu.Compose(scenarios...)
}

// EagerCutBatched cuts a run report at a batch boundary: the quantile
// timeout is taken over whole batch groups, so no partially-paid batch is
// split. It returns the kept results, the effective timeout, and the time
// saved versus waiting out the full run.
func EagerCutBatched(rep *qpu.RunReport, q float64) (kept []qpu.Result, timeout, saved float64) {
	return qpu.EagerCutBatched(rep, q)
}

// ClampAngle wraps an angle into [-pi, pi], a convenience for initial
// points produced by optimizers.
func ClampAngle(x float64) float64 {
	for x > math.Pi {
		x -= 2 * math.Pi
	}
	for x < -math.Pi {
		x += 2 * math.Pi
	}
	return x
}
