// Failure injection and risk-aware fleet scheduling: run the same streaming
// reconstruction twice under an injected mid-run device dropout — once with
// the tail-blind adaptive scheduler and once with the risk-aware policy
// layer (tail-exposure batch caps, retry with backoff, quarantine and
// probation) — and compare makespans at identical reconstruction quality.
//
// The injection is deterministic: scenarios are seeded streams of virtual
// time, so a chaos run reruns bit-identically and scheduler changes diff
// cleanly against it.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	oscar "repro"
	"repro/internal/noise"
	"repro/internal/qpu"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	prob, err := oscar.Random3RegularMaxCut(16, rng)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := oscar.NewAnalyticQAOA(prob, noise.Fig4())
	if err != nil {
		log.Fatal(err)
	}
	grid, err := oscar.QAOAGrid(1, 40, 80)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := oscar.GenerateDense(grid, dev.Evaluate, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The balanced device goes dark shortly into the run and stays dark for
	// most of it. Schedulers learn about the outage only through failed
	// dispatches — there is no side channel.
	mkDevices := func() []oscar.Device {
		return []oscar.Device{
			{Name: "hi-queue", Eval: dev, Latency: qpu.LatencyModel{QueueMedian: 120, Sigma: 0.5, Exec: 1, TailProb: 0.02, TailFactor: 10}},
			{Name: "balanced", Eval: dev, Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5, TailProb: 0.02, TailFactor: 10},
				Scenario: oscar.Dropout{Start: 300, Duration: 4000}},
			{Name: "slow-exec", Eval: dev, Latency: qpu.LatencyModel{QueueMedian: 10, Sigma: 0.5, Exec: 12, TailProb: 0.02, TailFactor: 10}},
		}
	}

	run := func(risk bool) *oscar.FleetStreamResult {
		sched, err := oscar.NewFleet(oscar.FleetOptions{Seed: 5, RiskAware: risk}, mkDevices()...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sched.ReconstructStream(context.Background(), grid, oscar.Options{
			SamplingFraction: 0.15, Seed: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("streaming 15% of the 40x80 grid with the balanced device dark from t=300s to t=4300s:")
	blind := run(false)
	riskRes := run(true)

	nrBlind, err := oscar.NRMSE(truth, blind.Landscape)
	if err != nil {
		log.Fatal(err)
	}
	nrRisk, err := oscar.NRMSE(truth, riskRes.Landscape)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  tail-blind adaptive: makespan %6.0fs, %3d retries, NRMSE %.4f\n",
		blind.Report.Makespan, blind.Report.Retries, nrBlind)
	fmt.Printf("  risk-aware:          makespan %6.0fs, %3d retries, NRMSE %.4f\n",
		riskRes.Report.Makespan, riskRes.Report.Retries, nrRisk)

	// The risk-aware run's quarantine log shows the dropout being detected,
	// the device benched, probed while dark, and re-admitted once the probe
	// succeeds after the window ends.
	fmt.Println("\nquarantine transitions of the risk-aware run:")
	for _, ev := range riskRes.Quarantines {
		verb := "re-admitted"
		if ev.Benched() {
			verb = "benched"
		}
		fmt.Printf("  t=%6.0fs  %-9s %s (%s)\n", ev.Time, ev.Name, verb, ev.Reason)
	}
	fmt.Println("\nlearned per-device state at the end of the risk-aware run:")
	for _, st := range riskRes.DeviceStates {
		fmt.Printf("  %-9s batch %3d, %3d jobs, fail rate %.2f, tail prob %.2f, quarantined %d time(s)\n",
			st.Name, st.BatchSize, st.Jobs, st.FailRate, st.TailProb, st.Quarantines)
	}
}
