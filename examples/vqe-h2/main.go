// VQE on H2: a chemistry workload end to end. Reconstruct the UCCSD energy
// landscape of the hydrogen molecule with OSCAR, pick the initial point from
// the reconstruction, and converge a VQE run to the exact ground-state
// energy (-1.857275 Ha) — the Table 3 configuration turned into a working
// ground-state solver.
package main

import (
	"fmt"
	"log"

	oscar "repro"
	"repro/internal/backend"
	"repro/internal/optimizer"
)

func main() {
	h2 := oscar.H2()
	ans, err := oscar.UCCSDH2Ansatz()
	if err != nil {
		log.Fatal(err)
	}
	dev, err := oscar.NewStateVector(h2, ans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H2 (STO-3G, 2 qubits), UCCSD ansatz with %d parameters\n", ans.NumParams)

	// The dominant parameter is the double excitation (parameter 2).
	// Reconstruct the (single-1, double) slice with OSCAR at the paper's
	// 50-samples-per-dimension Table 3 configuration.
	grid, err := oscar.NewGrid(
		oscar.Axis{Name: "single-1", Min: -1.5, Max: 1.5, N: 50},
		oscar.Axis{Name: "double", Min: -1.5, Max: 1.5, N: 50},
	)
	if err != nil {
		log.Fatal(err)
	}
	slice := func(p []float64) (float64, error) {
		return dev.Evaluate([]float64{p[0], 0, p[1]})
	}
	recon, stats, err := oscar.Reconstruct(grid, slice, oscar.Options{
		SamplingFraction: 0.3, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := oscar.GenerateDense(grid, slice, 0)
	if err != nil {
		log.Fatal(err)
	}
	nr, _ := oscar.NRMSE(truth, recon)
	fmt.Printf("landscape: %d of %d evaluations (%.1fx), NRMSE %.4f\n",
		stats.Samples, stats.GridSize, stats.Speedup, nr)

	// Initial point: the reconstruction's minimum.
	minV, minIdx := recon.Min()
	if minIdx < 0 {
		log.Fatal("reconstruction has no finite values")
	}
	pt := grid.Point(minIdx)
	fmt.Printf("reconstructed minimum %.6f Ha at (s1=%.3f, d=%.3f)\n", minV, pt[0], pt[1])

	// Full 3-parameter VQE from the OSCAR initial point.
	counted := backend.NewCounting(dev)
	obj := func(x []float64) (float64, error) { return counted.Evaluate(x) }
	res, err := optimizer.NelderMead(obj, []float64{pt[0], 0, pt[1]}, optimizer.NelderMeadOptions{
		MaxIter: 400, Tol: 1e-10, Step: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	const exact = -1.8572750302023797
	fmt.Printf("VQE energy: %.9f Ha after %d circuit evaluations\n", res.F, counted.Count())
	fmt.Printf("exact:      %.9f Ha (error %.2e Ha)\n", exact, res.F-exact)
	if res.F-exact > 1e-6 {
		fmt.Println("warning: VQE did not reach chemical precision")
	}
}
