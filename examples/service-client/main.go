// Command service-client demonstrates the oscard job API: submit a
// reconstruction job asynchronously, poll it to completion, print the
// result, then submit the identical job again to show the server-side
// execution cache at work. Finally it exercises the landscape-as-a-service
// read path: the finished job's published artifact is listed and its fitted
// surrogate batch-queried twice — the second query hits the server's
// interpolator LRU and refits nothing. Start the server first:
//
//	go run ./cmd/oscard -addr :8080
//	go run ./examples/service-client -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"
)

type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	RunMS  int64  `json:"run_ms"`
	Result *struct {
		GridSize    int       `json:"grid_size"`
		Samples     int       `json:"samples"`
		Speedup     float64   `json:"speedup"`
		Min         float64   `json:"min"`
		MinPoint    []float64 `json:"min_point"`
		CacheHits   int64     `json:"cache_hits"`
		CacheMisses int64     `json:"cache_misses"`
		ArtifactID  string    `json:"artifact_id"`
	} `json:"result"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "oscard base URL")
	flag.Parse()

	// The job: reconstruct the depth-1 QAOA landscape of a 12-qubit
	// 3-regular MaxCut on the paper's 50x100 grid from 5% of the circuit
	// executions, on the closed-form analytic device.
	job := map[string]any{
		"problem": map[string]any{"kind": "maxcut3", "n": 12, "seed": 42},
		"backend": map[string]any{"kind": "analytic"},
		"grid":    map[string]any{"beta_n": 50, "gamma_n": 100},
		"options": map[string]any{"sampling_fraction": 0.05, "seed": 1},
		"tag":     "service-client-demo",
	}

	var artifactID string
	for round := 1; round <= 2; round++ {
		v := runOnce(*addr, job)
		r := v.Result
		fmt.Printf("round %d: job %s %s in %d ms — %d/%d evaluations (%.0fx), min %.4f at %v, cache %d hits / %d misses\n",
			round, v.ID, v.State, v.RunMS, r.Samples, r.GridSize, r.Speedup, r.Min, r.MinPoint, r.CacheHits, r.CacheMisses)
		if round == 2 && r.CacheHits != int64(r.Samples) {
			log.Fatalf("expected the identical second job to be fully cache-served, got %d/%d hits", r.CacheHits, r.Samples)
		}
		artifactID = r.ArtifactID
	}
	fmt.Println("the second job re-executed nothing: the server cached every circuit execution")

	// Both rounds produced identical content, so they share one artifact:
	// query its fitted surrogate — no backend, no reconstruction, just the
	// vectorized spline read path.
	if artifactID == "" {
		log.Fatal("finished job reported no artifact id")
	}
	queryArtifact(*addr, artifactID)
}

// queryArtifact lists the landscape store and batch-queries one artifact's
// surrogate at its reconstructed minimum and a few perturbations of it.
func queryArtifact(addr, id string) {
	resp, err := http.Get(addr + "/landscapes")
	if err != nil {
		log.Fatalf("list landscapes: %v", err)
	}
	var list struct {
		Landscapes []struct {
			ID     string `json:"id"`
			Points int    `json:"points"`
		} `json:"landscapes"`
	}
	decodeJSON(resp, &list)
	fmt.Printf("server holds %d landscape artifact(s)\n", len(list.Landscapes))

	var meta struct {
		Axes []struct {
			Min float64 `json:"min"`
			Max float64 `json:"max"`
		} `json:"axes"`
	}
	resp, err = http.Get(addr + "/landscapes/" + id)
	if err != nil {
		log.Fatalf("artifact metadata: %v", err)
	}
	decodeJSON(resp, &meta)

	points := [][]float64{}
	for i := 0; i < 8; i++ {
		p := make([]float64, len(meta.Axes))
		for k, ax := range meta.Axes {
			p[k] = ax.Min + (ax.Max-ax.Min)*float64(i)/7
		}
		points = append(points, p)
	}
	for round := 1; round <= 2; round++ {
		body, _ := json.Marshal(map[string]any{"points": points, "gradients": true})
		resp, err := http.Post(addr+"/landscapes/"+id+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		var out struct {
			Count  int       `json:"count"`
			Values []float64 `json:"values"`
			Error  string    `json:"error"`
		}
		decodeJSON(resp, &out)
		if out.Error != "" {
			log.Fatalf("query rejected: %s", out.Error)
		}
		fmt.Printf("query round %d: %d surrogate values, first %.4f\n", round, out.Count, out.Values[0])
	}
	fmt.Println("the second query reused the fitted surrogate from the server's LRU")
}

func decodeJSON(resp *http.Response, v any) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("bad response %q: %v", data, err)
	}
}

func runOnce(addr string, job map[string]any) jobView {
	body, err := json.Marshal(job)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	var v jobView
	decodeInto(resp, &v)
	if v.ID == "" {
		log.Fatalf("submit rejected: %s", v.Error)
	}

	for deadline := time.Now().Add(2 * time.Minute); ; {
		resp, err := http.Get(addr + "/jobs/" + v.ID)
		if err != nil {
			log.Fatalf("poll: %v", err)
		}
		decodeInto(resp, &v)
		switch v.State {
		case "done":
			return v
		case "failed", "canceled":
			log.Fatalf("job %s %s: %s", v.ID, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			log.Fatalf("job %s still %s after 2 minutes", v.ID, v.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func decodeInto(resp *http.Response, v *jobView) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("bad response %q: %v", data, err)
	}
}
