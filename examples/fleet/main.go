// Fleet scheduling: dispatch landscape sampling across a heterogeneous
// multi-QPU fleet with adaptive per-device batch sizes, stream completed
// batches into an incremental warm-started reconstruction, and cut the
// latency tail at a batch boundary.
//
// The scheduler learns each device's queue/execution ratio online (the split
// real cloud QPUs expose through queue timestamps): the queue-dominated
// device ends up carrying large batches that amortize its delay, while the
// execution-dominated one gets small batches that keep samples streaming.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	oscar "repro"
	"repro/internal/noise"
	"repro/internal/qpu"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	prob, err := oscar.Random3RegularMaxCut(16, rng)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := oscar.NewAnalyticQAOA(prob, noise.Fig4())
	if err != nil {
		log.Fatal(err)
	}
	grid, err := oscar.QAOAGrid(1, 40, 80)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := oscar.GenerateDense(grid, dev.Evaluate, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Three very different machines: one with a long queue but fast
	// execution, one balanced, one with a short queue but slow execution.
	// All see a 5% chance of a 10x latency tail.
	devices := []oscar.Device{
		{Name: "hi-queue", Eval: dev, Latency: qpu.LatencyModel{QueueMedian: 120, Sigma: 0.5, Exec: 1, TailProb: 0.05, TailFactor: 10}},
		{Name: "balanced", Eval: dev, Latency: qpu.LatencyModel{QueueMedian: 30, Sigma: 0.5, Exec: 5, TailProb: 0.05, TailFactor: 10}},
		{Name: "slow-exec", Eval: dev, Latency: qpu.LatencyModel{QueueMedian: 10, Sigma: 0.5, Exec: 12, TailProb: 0.05, TailFactor: 10}},
	}

	cache := oscar.NewEvalCache(0)
	sched, err := oscar.NewFleet(oscar.FleetOptions{
		Seed:         5,
		Cache:        cache,
		Thresholds:   []float64{0.5, 0.75}, // interim solves at 50% and 75% coverage
		KeepFraction: 0.92,                 // batch-boundary eager cut
		OnProgress: func(p oscar.FleetProgress) {
			fmt.Printf("  t=%6.0fs  %3d/%3d samples  solves=%d  batch sizes=%v\n",
				p.VirtualTime, p.SamplesDone, p.SamplesTotal, p.Solves, p.BatchSizes)
		},
	}, devices...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("streaming 15% of the 40x80 grid across the fleet:")
	res, err := sched.ReconstructStream(context.Background(), grid, oscar.Options{
		SamplingFraction: 0.15, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	nr, err := oscar.NRMSE(truth, res.Landscape)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstructed %d of %d points: NRMSE %.4f, fleet speedup %.1fx over 1 QPU\n",
		res.Stats.Samples, grid.Size(), nr, res.Report.Speedup())
	fmt.Printf("eager cut at t=%.0fs saved %.0fs of tail latency (%d interim solves warm-started the final one)\n",
		res.Timeout, res.Saved, len(res.Partials))
	for _, st := range sched.States() {
		fmt.Printf("  %-9s learned batch %3d (queue/exec ratio %6.1f) over %d batches / %d jobs\n",
			st.Name, st.BatchSize, st.Ratio, st.Batches, st.Jobs)
	}

	// A second request over the same region is served from the shared
	// fleet cache at virtual time zero.
	res2, err := sched.ReconstructStream(context.Background(), grid, oscar.Options{
		SamplingFraction: 0.15, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The eager cut already covers its keep fraction at t=0 from cached
	// points alone, so the fleet stops immediately.
	fmt.Printf("second identical request: done at t=%.0fs with %d cache-served points (%d stored entries)\n",
		res2.Timeout, res2.Stats.Samples, cache.Len())
}
