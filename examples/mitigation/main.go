// Mitigation: use OSCAR to benchmark and configure Zero-Noise Extrapolation
// (the paper's Section 6 use case). Comparing mitigation configurations
// normally costs a full landscape per configuration; with OSCAR each costs
// 10% of that, and the reconstructions preserve exactly the features —
// roughness, flatness, variance — that decide which configuration to deploy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	oscar "repro"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mitigation"
	"repro/internal/noise"
)

// shotZNE adapts the analytic evaluator to ZNE's noise scaling with
// finite-shot statistics (1024 shots per expectation).
type shotZNE struct {
	prob  *oscar.Problem
	base  noise.Profile
	cache map[float64]*backend.AnalyticQAOA
	rng   *rand.Rand
	sigma float64
}

func (s *shotZNE) NumParams() int { return 2 }

func (s *shotZNE) EvaluateScaled(params []float64, c float64) (float64, error) {
	ev, ok := s.cache[c]
	if !ok {
		var err error
		ev, err = backend.NewAnalyticQAOA(s.prob, s.base.Scaled(c))
		if err != nil {
			return 0, err
		}
		s.cache[c] = ev
	}
	v, err := ev.Evaluate(params)
	if err != nil {
		return 0, err
	}
	return v + s.sigma*s.rng.NormFloat64(), nil
}

func main() {
	rng := rand.New(rand.NewSource(11))
	prob, err := oscar.Random3RegularMaxCut(16, rng)
	if err != nil {
		log.Fatal(err)
	}
	base := noise.Fig9() // 1q 0.1%, 2q 2% — the paper's Figure 9 device
	sc := &shotZNE{
		prob:  prob,
		base:  base,
		cache: map[float64]*backend.AnalyticQAOA{},
		rng:   rand.New(rand.NewSource(5)),
		sigma: backend.ShotSpread(prob.Hamiltonian) / 32, // 1024 shots
	}

	richardson, err := mitigation.NewZNE(sc, []float64{1, 2, 3}, mitigation.Richardson)
	if err != nil {
		log.Fatal(err)
	}
	linear, err := mitigation.NewZNE(sc, []float64{1, 3}, mitigation.Linear)
	if err != nil {
		log.Fatal(err)
	}
	ampR, _ := mitigation.VarianceAmplification([]float64{1, 2, 3}, mitigation.Richardson)
	ampL, _ := mitigation.VarianceAmplification([]float64{1, 3}, mitigation.Linear)
	fmt.Printf("shot-variance amplification: richardson %.1fx, linear %.1fx\n", ampR, ampL)

	grid, err := oscar.QAOAGrid(1, 24, 48)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		eval landscape.EvalFunc
	}{
		{"unmitigated", func(p []float64) (float64, error) { return sc.EvaluateScaled(p, 1) }},
		{"zne-richardson{1,2,3}", richardson.Evaluate},
		{"zne-linear{1,3}", linear.Evaluate},
	}
	fmt.Printf("\n%-22s %12s %12s %12s %8s\n", "configuration", "roughness D2", "VoG", "variance", "NRMSE")
	for _, cfgCase := range configs {
		full, err := landscape.Generate(grid, cfgCase.eval, 1)
		if err != nil {
			log.Fatal(err)
		}
		// OSCAR: reconstruct the same landscape from 10% of its points.
		idx, err := core.SampleGrid(grid, 0.10, 3, false)
		if err != nil {
			log.Fatal(err)
		}
		vals := make([]float64, len(idx))
		for j, i := range idx {
			vals[j] = full.Data[i]
		}
		recon, _, err := core.ReconstructFromSamples(grid, idx, vals, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		nr, err := landscape.NRMSE(full.Data, recon.Data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.2f %12.4f %12.3f %8.3f\n",
			cfgCase.name,
			landscape.SecondDerivative(recon),
			landscape.VarianceOfGradient(recon),
			landscape.Variance(recon),
			nr)
	}
	fmt.Println("\nreading the reconstructions: Richardson amplifies the gradient (higher")
	fmt.Println("variance) but adds heavy jaggedness (D2) that hurts gradient-based")
	fmt.Println("optimizers; linear extrapolation is smoother — pick it for ADAM-style")
	fmt.Println("training, or pair Richardson with a gradient-free optimizer.")
}
