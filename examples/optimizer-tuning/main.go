// Optimizer tuning: the paper's Sections 7 and 8 use cases. Reconstruct a
// landscape once, interpolate it, then (a) trial-run optimizers on the
// interpolation for free, and (b) use the interpolation's minimum as the
// initial point for the real workflow, cutting QPU queries.
package main

import (
	"fmt"
	"log"
	"math/rand"

	oscar "repro"
	"repro/internal/optimizer"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	prob, err := oscar.Random3RegularMaxCut(16, rng)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := oscar.NewAnalyticQAOA(prob, oscar.DepolarizingNoise("device", 0.003, 0.007))
	if err != nil {
		log.Fatal(err)
	}
	grid, err := oscar.QAOAGrid(1, 50, 100)
	if err != nil {
		log.Fatal(err)
	}

	// Reconstruct once: 250 circuit runs.
	recon, stats, err := oscar.Reconstruct(grid, dev.Evaluate, oscar.Options{
		SamplingFraction: 0.05, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction: %d QPU queries (%.0fx cheaper than grid search)\n",
		stats.Samples, stats.Speedup)

	surf, err := oscar.Interpolate(recon)
	if err != nil {
		log.Fatal(err)
	}
	freeObjective := oscar.InterpolatedObjective(surf)

	bounds := []optimizer.Bounds{
		{Lo: grid.Axes[0].Min, Hi: grid.Axes[0].Max},
		{Lo: grid.Axes[1].Min, Hi: grid.Axes[1].Max},
	}
	start := []float64{grid.Axes[0].Min / 2, grid.Axes[1].Max * 0.9}

	// Use case 1: trial-run two optimizers on the interpolation — zero
	// QPU queries — to see which handles this landscape better.
	adamTrial, err := oscar.RunADAM(freeObjective, start, optimizer.ADAMOptions{MaxIter: 300, Bounds: bounds})
	if err != nil {
		log.Fatal(err)
	}
	cobylaTrial, err := oscar.RunCobyla(freeObjective, start, optimizer.CobylaOptions{MaxIter: 300, Bounds: bounds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrial runs on the interpolated reconstruction (0 QPU queries):\n")
	fmt.Printf("  adam:   f=%.4f at (%.3f, %.3f) after %d model queries\n",
		adamTrial.F, adamTrial.X[0], adamTrial.X[1], adamTrial.Queries)
	fmt.Printf("  cobyla: f=%.4f at (%.3f, %.3f) after %d model queries\n",
		cobylaTrial.F, cobylaTrial.X[0], cobylaTrial.X[1], cobylaTrial.Queries)

	// Use case 2: OSCAR initialization. Compare the real workflow from a
	// random start vs from the reconstruction's optimum.
	realObjective := func(x []float64) (float64, error) { return dev.Evaluate(x) }
	fromRandom, err := oscar.RunADAM(realObjective, start, optimizer.ADAMOptions{
		MaxIter: 2000, LearningRate: 0.01, Tol: 3e-4, Bounds: bounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	fromOSCAR, err := oscar.RunADAM(realObjective, adamTrial.X, optimizer.ADAMOptions{
		MaxIter: 2000, LearningRate: 0.01, Tol: 3e-4, Bounds: bounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal workflow (QPU queries to convergence):\n")
	fmt.Printf("  random init: %4d queries -> f=%.4f\n", fromRandom.Queries, fromRandom.F)
	fmt.Printf("  oscar  init: %4d queries -> f=%.4f (+%d reconstruction queries)\n",
		fromOSCAR.Queries, fromOSCAR.F, stats.Samples)
	total := fromOSCAR.Queries + stats.Samples
	if total < fromRandom.Queries {
		fmt.Printf("  net saving:  %d queries (%.0f%%)\n",
			fromRandom.Queries-total, 100*float64(fromRandom.Queries-total)/float64(fromRandom.Queries))
	} else {
		fmt.Printf("  net overhead: %d queries — but the %d reconstruction queries ran in parallel\n",
			total-fromRandom.Queries, stats.Samples)
	}
}
