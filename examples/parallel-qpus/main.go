// Parallel QPUs: the paper's Section 5. Fan landscape samples out across a
// fleet of heterogeneous QPUs, fix the noise mismatch with the Noise
// Compensation Model, and use eager reconstruction to cut off tail latency.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	oscar "repro"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/noise"
	"repro/internal/qpu"
)

func main() {
	rng := rand.New(rand.NewSource(31))
	prob, err := oscar.Random3RegularMaxCut(16, rng)
	if err != nil {
		log.Fatal(err)
	}
	// Two devices with different noise: QPU-A is the reference machine.
	devA, err := oscar.NewAnalyticQAOA(prob, noise.QPU1())
	if err != nil {
		log.Fatal(err)
	}
	devB, err := oscar.NewAnalyticQAOA(prob, noise.QPU2())
	if err != nil {
		log.Fatal(err)
	}
	grid, err := oscar.QAOAGrid(1, 40, 80)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := oscar.GenerateDense(grid, devA.Evaluate, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Sample 10% of the grid and split it across the fleet with heavy
	// tail latency on both devices.
	idx, err := core.SampleGrid(grid, 0.10, 4, false)
	if err != nil {
		log.Fatal(err)
	}
	lat := qpu.LatencyModel{QueueMedian: 45, Sigma: 0.5, Exec: 4, TailProb: 0.07, TailFactor: 22}
	ex, err := oscar.NewExecutor(9,
		oscar.Device{Name: "qpu-a", Eval: devA, Latency: lat},
		oscar.Device{Name: "qpu-b", Eval: devB, Latency: lat},
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ex.Run(grid, idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet run: %d jobs on 2 QPUs, makespan %.0fs vs %.0fs serial (%.1fx)\n",
		len(rep.Results), rep.Makespan, rep.SerialTime, rep.Speedup())

	// Batched submission: 25 circuits per job pay one queue delay together,
	// the amortization real cloud QPUs reward.
	repB, err := ex.RunBatched(context.Background(), grid, idx, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batched fleet run (25/job): makespan %.0fs vs %.0fs serial (%.1fx, %.1fx over unbatched)\n",
		repB.Makespan, repB.SerialTime, repB.Speedup(), rep.Makespan/repB.Makespan)

	// Uncompensated: mix both devices' values directly.
	mixIdx := make([]int, len(rep.Results))
	mixVals := make([]float64, len(rep.Results))
	for i, r := range rep.Results {
		mixIdx[i] = r.Index
		mixVals[i] = r.Value
	}
	recon, _, err := oscar.ReconstructFromSamples(grid, mixIdx, mixVals, oscar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plain, _ := oscar.NRMSE(truth, recon)

	// NCM: train an affine map from QPU-B's values to QPU-A's on 1% of
	// the grid, then transform QPU-B's samples before reconstructing.
	trainIdx, err := core.SampleGrid(grid, 0.01, 5, false)
	if err != nil {
		log.Fatal(err)
	}
	src, err := landscape.Sample(grid, devB.Evaluate, trainIdx, 0)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := landscape.Sample(grid, devA.Evaluate, trainIdx, 0)
	if err != nil {
		log.Fatal(err)
	}
	model, err := oscar.FitNCM(src, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NCM: reference ~ %.4f*source + %.4f (R2=%.5f, %d training pairs)\n",
		model.Slope, model.Intercept, model.R2, model.TrainingPairs)
	for i, r := range rep.Results {
		if r.Device == 1 { // measured on QPU-B
			mixVals[i] = model.Transform(r.Value)
		}
	}
	reconNCM, _, err := oscar.ReconstructFromSamples(grid, mixIdx, mixVals, oscar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	comp, _ := oscar.NRMSE(truth, reconNCM)
	fmt.Printf("reconstruction vs QPU-A truth: uncompensated NRMSE %.4f, +NCM %.4f\n", plain, comp)

	// Eager reconstruction: stop waiting at the 90th-percentile job.
	timeout := qpu.TimeoutForFraction(rep, 0.9)
	kept, saved := qpu.EagerCut(rep, timeout)
	eIdx := make([]int, len(kept))
	eVals := make([]float64, len(kept))
	for i, r := range kept {
		eIdx[i] = r.Index
		eVals[i] = r.Value
		if r.Device == 1 {
			eVals[i] = model.Transform(r.Value)
		}
	}
	reconEager, _, err := oscar.ReconstructFromSamples(grid, eIdx, eVals, oscar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	eager, _ := oscar.NRMSE(truth, reconEager)
	fmt.Printf("eager @90%%: kept %d/%d samples, saved %.0fs (%.0f%% of makespan), NRMSE %.4f\n",
		len(kept), len(rep.Results), saved, 100*saved/rep.Makespan, eager)
}
