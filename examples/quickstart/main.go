// Quickstart: reconstruct a full QAOA cost landscape from 5% of the circuit
// executions a grid search would need, and verify the reconstruction
// quality — the end-to-end OSCAR workflow on one page.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	oscar "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 1. Pick a problem: MaxCut on a random 3-regular graph, the paper's
	//    primary benchmark.
	prob, err := oscar.Random3RegularMaxCut(16, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %s (%d qubits, %d edges)\n", prob.Name, prob.N(), len(prob.Graph.Edges))

	// 2. Pick a device: the closed-form depth-1 QAOA engine with a
	//    depolarizing noise profile (1q 0.3%, 2q 0.7%).
	dev, err := oscar.NewAnalyticQAOA(prob, oscar.DepolarizingNoise("demo-device", 0.003, 0.007))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Define the Table 1 grid: beta in [-pi/4, pi/4] x 50 samples,
	//    gamma in [-pi/2, pi/2] x 100 samples = 5000 grid points.
	grid, err := oscar.QAOAGrid(1, 50, 100)
	if err != nil {
		log.Fatal(err)
	}

	// 4. OSCAR: measure 5% of the grid at random, reconstruct the rest.
	//    The sampled circuits run through the batched execution engine —
	//    the device's native batch path, a memoizing cache, and
	//    cancellation via ctx.
	cache := oscar.NewEvalCache(0)
	recon, stats, err := oscar.ReconstructBatch(context.Background(), grid, oscar.Batch(dev), oscar.Options{
		SamplingFraction: 0.05,
		Seed:             1,
		Cache:            cache,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oscar: %d of %d circuit runs (%.0fx speedup)\n",
		stats.Samples, stats.GridSize, stats.Speedup)

	// 5. Compare with the dense grid search it replaced.
	truth, err := oscar.GenerateDenseBatch(context.Background(), grid, oscar.Batch(dev), 0)
	if err != nil {
		log.Fatal(err)
	}
	nrmse, err := oscar.NRMSE(truth, recon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction NRMSE: %.4f\n", nrmse)

	// 6. The bird's-eye view: where is the optimum?
	minV, minIdx := recon.Min()
	trueMin, trueIdx := truth.Min()
	if minIdx < 0 || trueIdx < 0 {
		log.Fatal("landscape has no finite values")
	}
	pt := grid.Point(minIdx)
	truePt := grid.Point(trueIdx)
	fmt.Printf("reconstructed minimum: %.4f at (beta=%.3f, gamma=%.3f)\n", minV, pt[0], pt[1])
	fmt.Printf("true minimum:          %.4f at (beta=%.3f, gamma=%.3f)\n", trueMin, truePt[0], truePt[1])
}
