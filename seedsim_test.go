package oscar

// seedsim_test.go is a frozen replica of the seed state-vector simulator
// (per-point state allocation, branchy full-scan gate loops, xor-fold
// parity, one full-state pass per Hamiltonian term). It exists so
// BenchmarkGenerateEngine can report the zero-allocation engine's speedup
// against the exact code it replaced, inside one binary. Do not optimize
// this file.

import (
	"fmt"
	"math"

	"repro/internal/pauli"
	"repro/internal/qsim"
)

func seedParity(x uint64) bool {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x&1 == 1
}

func seedSignC(masked uint64) complex128 {
	if seedParity(masked) {
		return -1
	}
	return 1
}

func seedIPower(k int) complex128 {
	switch k % 4 {
	case 0:
		return 1
	case 1:
		return complex(0, 1)
	case 2:
		return -1
	default:
		return complex(0, -1)
	}
}

func seedGateMatrix(k qsim.Kind, theta float64) [2][2]complex128 {
	inv := complex(1/math.Sqrt2, 0)
	c := complex(math.Cos(theta/2), 0)
	sI := complex(0, math.Sin(theta/2))
	switch k {
	case qsim.GateH:
		return [2][2]complex128{{inv, inv}, {inv, -inv}}
	case qsim.GateX:
		return [2][2]complex128{{0, 1}, {1, 0}}
	case qsim.GateY:
		return [2][2]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}}
	case qsim.GateZ:
		return [2][2]complex128{{1, 0}, {0, -1}}
	case qsim.GateS:
		return [2][2]complex128{{1, 0}, {0, complex(0, 1)}}
	case qsim.GateSdg:
		return [2][2]complex128{{1, 0}, {0, complex(0, -1)}}
	case qsim.GateT:
		return [2][2]complex128{{1, 0}, {0, complex(math.Cos(math.Pi/4), math.Sin(math.Pi/4))}}
	case qsim.GateRX:
		return [2][2]complex128{{c, -sI}, {-sI, c}}
	case qsim.GateRY:
		sR := complex(math.Sin(theta/2), 0)
		return [2][2]complex128{{c, -sR}, {sR, c}}
	case qsim.GateRZ:
		return [2][2]complex128{
			{complex(math.Cos(theta/2), -math.Sin(theta/2)), 0},
			{0, complex(math.Cos(theta/2), math.Sin(theta/2))},
		}
	default:
		panic(fmt.Sprintf("seedsim: %v is not a single-qubit matrix gate", k))
	}
}

func seedApply1Q(amp []complex128, q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	dim := len(amp)
	for base := 0; base < dim; base += bit << 1 {
		for i := base; i < base+bit; i++ {
			a0 := amp[i]
			a1 := amp[i|bit]
			amp[i] = m[0][0]*a0 + m[0][1]*a1
			amp[i|bit] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

func seedApplyGate(amp []complex128, g qsim.Gate, theta float64) {
	switch g.Kind {
	case qsim.GateCNOT:
		cb := 1 << uint(g.Qubits[0])
		tb := 1 << uint(g.Qubits[1])
		for i := range amp {
			if i&cb != 0 && i&tb == 0 {
				j := i | tb
				amp[i], amp[j] = amp[j], amp[i]
			}
		}
	case qsim.GateCZ:
		ab := 1 << uint(g.Qubits[0])
		bb := 1 << uint(g.Qubits[1])
		for i := range amp {
			if i&ab != 0 && i&bb != 0 {
				amp[i] = -amp[i]
			}
		}
	case qsim.GateSWAP:
		ab := 1 << uint(g.Qubits[0])
		bb := 1 << uint(g.Qubits[1])
		for i := range amp {
			if i&ab != 0 && i&bb == 0 {
				j := i&^ab | bb
				amp[i], amp[j] = amp[j], amp[i]
			}
		}
	case qsim.GateRZZ:
		ab := 1 << uint(g.Qubits[0])
		bb := 1 << uint(g.Qubits[1])
		pPlus := complex(math.Cos(theta/2), -math.Sin(theta/2))
		pMinus := complex(math.Cos(theta/2), math.Sin(theta/2))
		for i := range amp {
			even := (i&ab != 0) == (i&bb != 0)
			if even {
				amp[i] *= pPlus
			} else {
				amp[i] *= pMinus
			}
		}
	case qsim.GatePauliRot:
		seedApplyPauliRot(amp, g.Pauli, theta)
	default:
		seedApply1Q(amp, g.Qubits[0], seedGateMatrix(g.Kind, theta))
	}
}

func seedApplyPauliRot(amp []complex128, p pauli.String, theta float64) {
	x := p.XMask()
	z := p.ZMask()
	nY := 0
	for q := 0; q < p.N(); q++ {
		if p.At(q) == pauli.Y {
			nY++
		}
	}
	cosT := complex(math.Cos(theta/2), 0)
	minusISin := complex(0, -math.Sin(theta/2))
	iPow := seedIPower(nY)
	if x == 0 {
		for b := range amp {
			sign := complex(1, 0)
			if seedParity(uint64(b) & z) {
				sign = -1
			}
			amp[b] *= cosT + minusISin*iPow*sign
		}
		return
	}
	xi := int(x)
	for b := range amp {
		b2 := b ^ xi
		if b > b2 {
			continue
		}
		cb := iPow * seedSignC(uint64(b)&z)
		cb2 := iPow * seedSignC(uint64(b2)&z)
		a, a2 := amp[b], amp[b2]
		amp[b] = cosT*a + minusISin*cb2*a2
		amp[b2] = cosT*a2 + minusISin*cb*a
	}
}

func seedExpectationPauli(amp []complex128, p pauli.String) float64 {
	x := p.XMask()
	z := p.ZMask()
	nY := 0
	for q := 0; q < p.N(); q++ {
		if p.At(q) == pauli.Y {
			nY++
		}
	}
	iPow := seedIPower(nY)
	var acc complex128
	xi := int(x)
	for b := range amp {
		cb := iPow * seedSignC(uint64(b)&z)
		acc += complex(real(amp[b^xi]), -imag(amp[b^xi])) * cb * amp[b]
	}
	return real(acc)
}

// seedEvaluate is the seed backend.StateVector.Evaluate: allocate a fresh
// 2^n state, run the circuit through the seed kernels, then make one
// full-state pass per Hamiltonian term.
func seedEvaluate(c *qsim.Circuit, params []float64, h *pauli.Hamiltonian) (float64, error) {
	if err := c.Validate(params); err != nil {
		return 0, err
	}
	amp := make([]complex128, 1<<uint(c.N()))
	amp[0] = 1
	for _, g := range c.Gates() {
		theta, err := g.Angle(params)
		if err != nil {
			return 0, err
		}
		seedApplyGate(amp, g, theta)
	}
	var total float64
	for _, t := range h.Terms() {
		total += t.Coeff * seedExpectationPauli(amp, t.P)
	}
	return total, nil
}
