package oscar

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/optimizer"
)

// TestReconstructEquivalentAcrossEntryPoints is the PR's acceptance
// criterion: for a fixed seed, Reconstruct output is bit-identical across
// worker counts and across the legacy, context, and batch entry points.
func TestReconstructEquivalentAcrossEntryPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prob, err := Random3RegularMaxCut(14, rng)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewAnalyticQAOA(prob, DepolarizingNoise("d", 0.002, 0.008))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := QAOAGrid(1, 25, 50)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{SamplingFraction: 0.1, Seed: 99}
	ref, _, err := Reconstruct(grid, dev.Evaluate, opt)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, l *Landscape) {
		t.Helper()
		for i := range l.Data {
			if l.Data[i] != ref.Data[i] {
				t.Fatalf("%s: point %d differs: %g vs %g", label, i, l.Data[i], ref.Data[i])
			}
		}
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		o := opt
		o.Workers = workers
		legacy, _, err := Reconstruct(grid, dev.Evaluate, o)
		if err != nil {
			t.Fatal(err)
		}
		check("legacy", legacy)
		withCtx, _, err := ReconstructContext(context.Background(), grid, dev.Evaluate, o)
		if err != nil {
			t.Fatal(err)
		}
		check("context", withCtx)
		o.Cache = NewEvalCache(0)
		batch, _, err := ReconstructBatch(context.Background(), grid, Batch(dev), o)
		if err != nil {
			t.Fatal(err)
		}
		check("batch", batch)
	}
}

// TestEngineObjectiveThroughCache checks an engine-backed ADAM run: stencil
// batches flow through the engine and revisited points come from the cache.
func TestEngineObjectiveThroughCache(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	prob, err := Random3RegularMaxCut(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewAnalyticQAOA(prob, IdealNoise())
	if err != nil {
		t.Fatal(err)
	}
	// Uncached engine: bit-identical to the serial optimizer.
	plain := NewEngine(Batch(dev), EngineOptions{Workers: 2})
	res0, err := RunADAMBatch(EngineObjective(context.Background(), plain), []float64{0.3, -0.3},
		optimizer.ADAMOptions{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunADAM(dev.Evaluate, []float64{0.3, -0.3}, optimizer.ADAMOptions{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res0.F != serial.F || res0.Queries != serial.Queries {
		t.Fatalf("engine-backed ADAM diverged: F %g vs %g, queries %d vs %d",
			res0.F, serial.F, res0.Queries, serial.Queries)
	}
	// Cached engine: the quantized cache may merge sub-quantum-distinct
	// stencil points, so the trajectory agrees to quantization precision
	// rather than bit-for-bit.
	cache := NewEvalCache(0)
	en := NewEngine(Batch(dev), EngineOptions{Workers: 2, Cache: cache})
	res, err := RunADAMBatch(EngineObjective(context.Background(), en), []float64{0.3, -0.3},
		optimizer.ADAMOptions{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != serial.Queries {
		t.Fatalf("queries %d vs %d", res.Queries, serial.Queries)
	}
	if math.Abs(res.F-serial.F) > 1e-6 {
		t.Fatalf("cached engine ADAM drifted: F %g vs %g", res.F, serial.F)
	}
	// A second identical run revisits every point: all engine lookups hit.
	misses := cache.Misses()
	res2, err := RunADAMBatch(EngineObjective(context.Background(), en), []float64{0.3, -0.3},
		optimizer.ADAMOptions{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res2.F != res.F {
		t.Fatalf("cached re-run diverged: %g vs %g", res2.F, res.F)
	}
	if cache.Misses() != misses {
		t.Fatalf("cached re-run re-executed points: misses %d -> %d", misses, cache.Misses())
	}
	if cache.Hits() < int64(res.Queries) {
		t.Fatalf("cache hits %d, want >= %d", cache.Hits(), res.Queries)
	}
}

// TestPublicWorkflow exercises the documented end-to-end API: problem ->
// device -> grid -> reconstruct -> interpolate -> optimize.
func TestPublicWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prob, err := Random3RegularMaxCut(12, rng)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewAnalyticQAOA(prob, DepolarizingNoise("d", 0.001, 0.005))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := QAOAGrid(1, 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	recon, stats, err := Reconstruct(grid, dev.Evaluate, Options{SamplingFraction: 0.08, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != 144 {
		t.Fatalf("samples %d", stats.Samples)
	}
	truth, err := GenerateDense(grid, dev.Evaluate, 0)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := NRMSE(truth, recon)
	if err != nil {
		t.Fatal(err)
	}
	if nr > 0.1 {
		t.Fatalf("NRMSE %g", nr)
	}

	surf, err := Interpolate(recon)
	if err != nil {
		t.Fatal(err)
	}
	obj := InterpolatedObjective(surf)
	res, err := RunADAM(obj, []float64{0.1, 0.1}, optimizer.ADAMOptions{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	minV, _ := recon.Min()
	if res.F > minV+1 {
		t.Fatalf("optimizer on interpolation found %g, landscape min %g", res.F, minV)
	}
	if _, err := obj([]float64{1}); err == nil {
		t.Fatal("want arity error from interpolated objective")
	}
	// The 2-axis fast path still hands back the paper's bivariate spline.
	if _, ok := surf.(*Bicubic); !ok {
		t.Fatalf("2-axis Interpolate returned %T, want *Bicubic", surf)
	}
}

// TestP2PublicWorkflow is the PR's p=2 acceptance criterion: a depth-2 QAOA
// workload runs end to end through the public API — QAOAGridP(2, ...) →
// ReconstructBatch → Interpolate → OptimizeOnSurrogate — with a true 4-D
// reconstruction and a 4-parameter surrogate descent.
func TestP2PublicWorkflow(t *testing.T) {
	prob, err := MeshMaxCut(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := QAOAAnsatz(prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewStateVector(prob, ans)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := QAOAGridP(2, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Axes) != 4 {
		t.Fatalf("%d axes, want 4", len(grid.Axes))
	}
	wantNames := []string{"beta1", "beta2", "gamma1", "gamma2"}
	for i, a := range grid.Axes {
		if a.Name != wantNames[i] {
			t.Fatalf("axis %d named %q, want %q", i, a.Name, wantNames[i])
		}
	}
	ctx := context.Background()
	recon, stats, err := ReconstructBatch(ctx, grid, Batch(dev), Options{SamplingFraction: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GridSize != 6*6*7*7 {
		t.Fatalf("grid size %d", stats.GridSize)
	}
	surf, err := Interpolate(recon)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := surf.(*NDSpline); !ok {
		t.Fatalf("4-axis Interpolate returned %T, want *NDSpline", surf)
	}
	if surf.Arity() != 4 {
		t.Fatalf("surrogate arity %d, want 4", surf.Arity())
	}
	res, err := OptimizeOnSurrogate(ctx, grid, Batch(dev), SurrogateOptions{
		Recon: Options{SamplingFraction: 0.3, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Optimum.X) != 4 {
		t.Fatalf("optimum has %d parameters, want 4", len(res.Optimum.X))
	}
	minV, _ := res.Landscape.Min()
	if res.Optimum.F > minV+1e-9 {
		t.Fatalf("surrogate descent ended at %g, above the grid minimum %g", res.Optimum.F, minV)
	}
	// The surrogate optimum is a real improvement on the true landscape:
	// re-evaluating it on the circuit beats the median grid value.
	atOpt, err := dev.Evaluate(res.Optimum.X)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GenerateDense(grid, dev.Evaluate, 0)
	if err != nil {
		t.Fatal(err)
	}
	trueMin, _ := truth.Min()
	if atOpt > trueMin+0.5 {
		t.Fatalf("surrogate optimum evaluates to %g on the circuit; true minimum is %g", atOpt, trueMin)
	}
	// QAOAGridP degenerates to the classic grid at p=1 and rejects p<1.
	g1, err := QAOAGridP(1, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Axes) != 2 || g1.Axes[0].Name != "beta" || g1.Axes[1].Name != "gamma" {
		t.Fatalf("QAOAGridP(1) axes %v", g1.Axes)
	}
	if _, err := QAOAGridP(0, 8, 9); err == nil {
		t.Fatal("want error for p < 1")
	}
}

func TestPublicProblemConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := SKProblem(6, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := MeshMaxCut(2, 3); err != nil {
		t.Fatal(err)
	}
	if H2().N() != 2 || LiH().N() != 4 {
		t.Fatal("molecule sizes wrong")
	}
	a, err := TwoLocalAnsatz(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumParams != 8 {
		t.Fatalf("two-local params %d", a.NumParams)
	}
	if _, err := UCCSDH2Ansatz(); err != nil {
		t.Fatal(err)
	}
	if _, err := UCCSDLiHAnsatz(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicEvaluators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prob, err := Random3RegularMaxCut(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := QAOAAnsatz(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewStateVector(prob, a)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewDensity(prob, a, IdealNoise())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := sv.Evaluate([]float64{0.2, -0.4})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := dm.Evaluate([]float64{0.2, -0.4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-8 {
		t.Fatalf("sv %g vs dm %g", v1, v2)
	}
	ws, err := WithShots(sv, 4096, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := ws.Evaluate([]float64{0.2, -0.4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v3-v1) > 0.2 {
		t.Fatalf("shot noise too large: %g vs %g", v3, v1)
	}
}

func TestFitNCMPublic(t *testing.T) {
	m, err := FitNCM([]float64{0, 1, 2}, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Slope-2) > 1e-12 || math.Abs(m.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", m)
	}
}

func TestClampAngle(t *testing.T) {
	cases := map[float64]float64{
		0:               0,
		3 * math.Pi:     math.Pi,
		-3 * math.Pi:    -math.Pi,
		math.Pi / 2:     math.Pi / 2,
		2*math.Pi + 0.1: 0.1,
	}
	for in, want := range cases {
		if got := ClampAngle(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("ClampAngle(%g)=%g want %g", in, got, want)
		}
	}
}
