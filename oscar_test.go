package oscar

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/optimizer"
)

// TestPublicWorkflow exercises the documented end-to-end API: problem ->
// device -> grid -> reconstruct -> interpolate -> optimize.
func TestPublicWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prob, err := Random3RegularMaxCut(12, rng)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewAnalyticQAOA(prob, DepolarizingNoise("d", 0.001, 0.005))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := QAOAGrid(1, 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	recon, stats, err := Reconstruct(grid, dev.Evaluate, Options{SamplingFraction: 0.08, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != 144 {
		t.Fatalf("samples %d", stats.Samples)
	}
	truth, err := GenerateDense(grid, dev.Evaluate, 0)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := NRMSE(truth, recon)
	if err != nil {
		t.Fatal(err)
	}
	if nr > 0.1 {
		t.Fatalf("NRMSE %g", nr)
	}

	surf, err := Interpolate(recon)
	if err != nil {
		t.Fatal(err)
	}
	obj := InterpolatedObjective(surf)
	res, err := RunADAM(obj, []float64{0.1, 0.1}, optimizer.ADAMOptions{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	minV, _ := recon.Min()
	if res.F > minV+1 {
		t.Fatalf("optimizer on interpolation found %g, landscape min %g", res.F, minV)
	}
	if _, err := obj([]float64{1}); err == nil {
		t.Fatal("want arity error from interpolated objective")
	}
}

func TestPublicProblemConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := SKProblem(6, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := MeshMaxCut(2, 3); err != nil {
		t.Fatal(err)
	}
	if H2().N() != 2 || LiH().N() != 4 {
		t.Fatal("molecule sizes wrong")
	}
	a, err := TwoLocalAnsatz(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumParams != 8 {
		t.Fatalf("two-local params %d", a.NumParams)
	}
	if _, err := UCCSDH2Ansatz(); err != nil {
		t.Fatal(err)
	}
	if _, err := UCCSDLiHAnsatz(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicEvaluators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prob, err := Random3RegularMaxCut(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := QAOAAnsatz(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewStateVector(prob, a)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewDensity(prob, a, IdealNoise())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := sv.Evaluate([]float64{0.2, -0.4})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := dm.Evaluate([]float64{0.2, -0.4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-8 {
		t.Fatalf("sv %g vs dm %g", v1, v2)
	}
	ws, err := WithShots(sv, 4096, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := ws.Evaluate([]float64{0.2, -0.4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v3-v1) > 0.2 {
		t.Fatalf("shot noise too large: %g vs %g", v3, v1)
	}
}

func TestFitNCMPublic(t *testing.T) {
	m, err := FitNCM([]float64{0, 1, 2}, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Slope-2) > 1e-12 || math.Abs(m.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", m)
	}
}

func TestClampAngle(t *testing.T) {
	cases := map[float64]float64{
		0:               0,
		3 * math.Pi:     math.Pi,
		-3 * math.Pi:    -math.Pi,
		math.Pi / 2:     math.Pi / 2,
		2*math.Pi + 0.1: 0.1,
	}
	for in, want := range cases {
		if got := ClampAngle(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("ClampAngle(%g)=%g want %g", in, got, want)
		}
	}
}
