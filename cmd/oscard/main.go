// Command oscard is the OSCAR reconstruction daemon: a long-running HTTP
// server that accepts reconstruction jobs as JSON, runs them through a
// shared execution engine with a bounded worker pool, and memoizes circuit
// executions per device configuration across requests. Fleet-mode jobs
// dispatch sampling across virtual multi-QPU fleets, optionally under
// injected fault scenarios (drift, dropouts, correlated queue spikes and
// retry storms) with risk-aware scheduling — retries, quarantine events,
// and learned tail estimates surface through /jobs, /stats, and /metrics.
// Every job carries a trace: GET /jobs/{id}/trace returns the span tree
// (or Chrome trace-event JSON with ?format=chrome), and log lines are
// structured key=value pairs carrying trace_id and job_id throughout.
// Every finished reconstruction publishes its landscape into a
// content-addressed artifact store served at /landscapes — with -artifact-dir
// the artifacts persist on disk and survive restarts. On shutdown
// (SIGINT/SIGTERM) it drains in-flight jobs and spills its caches to
// -cache-file, from which the next start warm-starts.
//
// Usage:
//
//	oscard -addr :8080 -jobs 8 -cache-file /var/lib/oscard/cache.gob \
//	       -artifact-dir /var/lib/oscard/landscapes
//
// With -debug-addr a second listener serves net/http/pprof and /debug/vars
// off the public mux, so profiling endpoints never leak through -addr.
//
// See the README's "Running as a service" section for the job JSON schema
// and examples/service-client for a submit-and-poll client.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and /debug/vars here (empty = disabled)")
		jobs       = flag.Int("jobs", 8, "max concurrent reconstruction jobs")
		jobWorkers = flag.Int("job-workers", 0, "engine+solver workers per job (0 = GOMAXPROCS)")
		maxGrid    = flag.Int("max-grid", 1<<20, "max grid points per job")
		maxQubits  = flag.Int("max-qubits", 20, "max qubits for simulator backends")
		quantum    = flag.Float64("quantum", 0, "cache parameter quantization (0 = default)")
		cacheFile  = flag.String("cache-file", "", "spill caches here on shutdown and warm-start from it")
		artDir     = flag.String("artifact-dir", "", "persist published landscape artifacts here (empty = in-memory only)")
		artLRU     = flag.Int("artifact-lru", 32, "fitted interpolators kept hot for /landscapes queries")
		noTrace    = flag.Bool("no-trace", false, "disable per-job tracing and stage histograms")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		spillEvery = flag.Duration("cache-spill-interval", 0,
			"also spill caches to -cache-file on this interval (0 = only on shutdown), so a crash loses at most one interval of memoized executions")
		drain = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	srv := service.New(service.Config{
		MaxConcurrent:  *jobs,
		JobWorkers:     *jobWorkers,
		MaxGridPoints:  *maxGrid,
		MaxQubits:      *maxQubits,
		Quantum:        *quantum,
		ArtifactDir:    *artDir,
		ArtifactLRU:    *artLRU,
		Logger:         logger,
		DisableTracing: *noTrace,
	})
	if *artDir != "" {
		n, loadErrs, dirErr := srv.ArtifactInfo()
		switch {
		case dirErr != "":
			logger.Warn("artifact dir unusable, serving memory-only", "dir", *artDir, "error", dirErr)
		case n > 0 || loadErrs > 0:
			logger.Info("serving landscape artifacts from disk", "dir", *artDir, "artifacts", n, "unreadable_skipped", loadErrs)
		}
	}
	if *cacheFile != "" {
		if err := srv.LoadCacheFile(*cacheFile); err != nil {
			logger.Warn("cache warm-start failed, continuing cold", "file", *cacheFile, "error", err.Error())
		} else if n := srv.CacheEntries(); n > 0 {
			logger.Info("warm-started execution cache", "file", *cacheFile, "entries", n)
		}
	}

	// Periodic background spill: the SaveCacheFile temp-file + atomic-rename
	// path guarantees a reader (or a crash mid-spill) never sees a torn
	// archive, so spilling while jobs run is safe.
	var spillDone chan struct{}
	stopSpill := make(chan struct{})
	if *cacheFile != "" && *spillEvery > 0 {
		spillDone = make(chan struct{})
		go func() {
			defer close(spillDone)
			t := time.NewTicker(*spillEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.SaveCacheFile(*cacheFile); err != nil {
						logger.Warn("periodic cache spill failed", "file", *cacheFile, "error", err.Error())
					} else {
						logger.Info("spilled execution cache", "file", *cacheFile, "entries", srv.CacheEntries())
					}
				case <-stopSpill:
					return
				}
			}
		}()
	}

	// Debug listener: pprof and expvar live on their own address so the
	// public API surface stays free of profiling endpoints.
	var dbg *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		dbg = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug listener failed", "error", err.Error())
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "max_jobs", *jobs)
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("server failed", "error", err.Error())
		os.Exit(1)
	case got := <-sig:
		logger.Info("shutting down", "signal", got.String())
	}
	close(stopSpill)
	if spillDone != nil {
		// Wait out any in-flight periodic spill so it cannot race the
		// final one below.
		<-spillDone
	}

	// Stop accepting connections, let in-flight requests and jobs drain,
	// then cancel stragglers.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err.Error())
	}
	if dbg != nil {
		_ = dbg.Shutdown(ctx)
	}
	srv.Drain(*drain)

	if *cacheFile != "" {
		if err := srv.SaveCacheFile(*cacheFile); err != nil {
			logger.Warn("cache spill failed", "file", *cacheFile, "error", err.Error())
		} else {
			logger.Info("spilled execution cache", "file", *cacheFile, "entries", srv.CacheEntries())
		}
	}
	logger.Info("bye")
}
