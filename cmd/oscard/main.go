// Command oscard is the OSCAR reconstruction daemon: a long-running HTTP
// server that accepts reconstruction jobs as JSON, runs them through a
// shared execution engine with a bounded worker pool, and memoizes circuit
// executions per device configuration across requests. Fleet-mode jobs
// dispatch sampling across virtual multi-QPU fleets, optionally under
// injected fault scenarios (drift, dropouts, correlated queue spikes and
// retry storms) with risk-aware scheduling — retries, quarantine events,
// and learned tail estimates surface through /jobs, /stats, and /metrics.
// Every finished reconstruction publishes its landscape into a
// content-addressed artifact store served at /landscapes — with -artifact-dir
// the artifacts persist on disk and survive restarts. On shutdown
// (SIGINT/SIGTERM) it drains in-flight jobs and spills its caches to
// -cache-file, from which the next start warm-starts.
//
// Usage:
//
//	oscard -addr :8080 -jobs 8 -cache-file /var/lib/oscard/cache.gob \
//	       -artifact-dir /var/lib/oscard/landscapes
//
// See the README's "Running as a service" section for the job JSON schema
// and examples/service-client for a submit-and-poll client.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		jobs       = flag.Int("jobs", 8, "max concurrent reconstruction jobs")
		jobWorkers = flag.Int("job-workers", 0, "engine+solver workers per job (0 = GOMAXPROCS)")
		maxGrid    = flag.Int("max-grid", 1<<20, "max grid points per job")
		maxQubits  = flag.Int("max-qubits", 20, "max qubits for simulator backends")
		quantum    = flag.Float64("quantum", 0, "cache parameter quantization (0 = default)")
		cacheFile  = flag.String("cache-file", "", "spill caches here on shutdown and warm-start from it")
		artDir     = flag.String("artifact-dir", "", "persist published landscape artifacts here (empty = in-memory only)")
		artLRU     = flag.Int("artifact-lru", 32, "fitted interpolators kept hot for /landscapes queries")
		spillEvery = flag.Duration("cache-spill-interval", 0,
			"also spill caches to -cache-file on this interval (0 = only on shutdown), so a crash loses at most one interval of memoized executions")
		drain = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	srv := service.New(service.Config{
		MaxConcurrent: *jobs,
		JobWorkers:    *jobWorkers,
		MaxGridPoints: *maxGrid,
		MaxQubits:     *maxQubits,
		Quantum:       *quantum,
		ArtifactDir:   *artDir,
		ArtifactLRU:   *artLRU,
	})
	if *artDir != "" {
		n, loadErrs, dirErr := srv.ArtifactInfo()
		switch {
		case dirErr != "":
			log.Printf("oscard: artifact dir unusable (serving memory-only): %s", dirErr)
		case n > 0 || loadErrs > 0:
			log.Printf("oscard: serving %d landscape artifacts from %s (%d unreadable skipped)", n, *artDir, loadErrs)
		}
	}
	if *cacheFile != "" {
		if err := srv.LoadCacheFile(*cacheFile); err != nil {
			log.Printf("oscard: cache warm-start failed (continuing cold): %v", err)
		} else if n := srv.CacheEntries(); n > 0 {
			log.Printf("oscard: warm-started %d cached executions from %s", n, *cacheFile)
		}
	}

	// Periodic background spill: the SaveCacheFile temp-file + atomic-rename
	// path guarantees a reader (or a crash mid-spill) never sees a torn
	// archive, so spilling while jobs run is safe.
	var spillDone chan struct{}
	stopSpill := make(chan struct{})
	if *cacheFile != "" && *spillEvery > 0 {
		spillDone = make(chan struct{})
		go func() {
			defer close(spillDone)
			t := time.NewTicker(*spillEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.SaveCacheFile(*cacheFile); err != nil {
						log.Printf("oscard: periodic cache spill failed: %v", err)
					} else {
						log.Printf("oscard: spilled %d cached executions to %s", srv.CacheEntries(), *cacheFile)
					}
				case <-stopSpill:
					return
				}
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		log.Printf("oscard: listening on %s (max %d concurrent jobs)", *addr, *jobs)
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("oscard: %v", err)
	case got := <-sig:
		log.Printf("oscard: %v, shutting down", got)
	}
	close(stopSpill)
	if spillDone != nil {
		// Wait out any in-flight periodic spill so it cannot race the
		// final one below.
		<-spillDone
	}

	// Stop accepting connections, let in-flight requests and jobs drain,
	// then cancel stragglers.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("oscard: http shutdown: %v", err)
	}
	srv.Drain(*drain)

	if *cacheFile != "" {
		if err := srv.SaveCacheFile(*cacheFile); err != nil {
			log.Printf("oscard: cache spill failed: %v", err)
		} else {
			log.Printf("oscard: spilled %d cached executions to %s", srv.CacheEntries(), *cacheFile)
		}
	}
	log.Print("oscard: bye")
}
