// Command oscar-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	oscar-bench                  # run every experiment (quick scale)
//	oscar-bench -run table2,fig4 # run selected experiments
//	oscar-bench -full            # paper-scale instance counts (slow)
//	oscar-bench -list            # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		full    = flag.Bool("full", false, "paper-scale instance counts (slow)")
		seed    = flag.Int64("seed", 2023, "random seed")
		workers = flag.Int("workers", 0, "worker pool for circuit evaluation (simulator batches included) and the sharded reconstruction solver (0 = GOMAXPROCS, 1 = fully serial)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Workers: *workers, Quick: !*full}
	reg := experiments.Registry()

	var ids []string
	if *run == "" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := reg[id]; !ok {
				fmt.Fprintf(os.Stderr, "oscar-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		table, err := reg[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oscar-bench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(table.Format())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
