// Command landscape generates, reconstructs, and renders a VQA cost
// landscape as an ASCII heatmap — the quickest way to see OSCAR work.
//
// Usage:
//
//	landscape                       # 16-qubit 3-regular MaxCut, 5% sampling
//	landscape -problem sk -n 12
//	landscape -noise 0.003,0.007 -fraction 0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	oscar "repro"
	"repro/internal/landscape"
)

// shades maps normalized values to glyphs, dark to bright.
const shades = " .:-=+*#%@"

func render(l *landscape.Landscape, maxRows, maxCols int) string {
	shape := l.Shape()
	if len(shape) != 2 {
		return fmt.Sprintf("heatmap needs a 2-axis landscape, got %d axes", len(shape))
	}
	rows, cols := shape[0], shape[1]
	minV, minIdx := l.Min()
	maxV, _ := l.Max()
	if minIdx < 0 {
		return "landscape has no finite values"
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	stepR := (rows + maxRows - 1) / maxRows
	stepC := (cols + maxCols - 1) / maxCols
	var b strings.Builder
	for r := 0; r < rows; r += stepR {
		for c := 0; c < cols; c += stepC {
			v := (l.Data[r*cols+c] - minV) / span
			idx := int(v * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func main() {
	var (
		problemKind = flag.String("problem", "3reg", "3reg | sk | mesh")
		n           = flag.Int("n", 16, "qubit count")
		noiseSpec   = flag.String("noise", "", "1q,2q depolarizing rates (empty = ideal)")
		fraction    = flag.Float64("fraction", 0.05, "sampling fraction")
		gridSpec    = flag.String("grid", "40x80", "beta x gamma grid resolution")
		seed        = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var (
		prob *oscar.Problem
		err  error
	)
	switch *problemKind {
	case "3reg":
		prob, err = oscar.Random3RegularMaxCut(*n, rng)
	case "sk":
		prob, err = oscar.SKProblem(*n, rng)
	case "mesh":
		prob, err = oscar.MeshMaxCut(2, *n/2)
	default:
		fmt.Fprintf(os.Stderr, "landscape: unknown problem %q\n", *problemKind)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	profile := oscar.IdealNoise()
	if *noiseSpec != "" {
		parts := strings.Split(*noiseSpec, ",")
		if len(parts) != 2 {
			log.Fatalf("landscape: -noise wants p1,p2, got %q", *noiseSpec)
		}
		p1, err1 := strconv.ParseFloat(parts[0], 64)
		p2, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			log.Fatalf("landscape: bad -noise %q", *noiseSpec)
		}
		profile = oscar.DepolarizingNoise("cli", p1, p2)
	}

	var gb, gg int
	if _, err := fmt.Sscanf(*gridSpec, "%dx%d", &gb, &gg); err != nil {
		log.Fatalf("landscape: bad -grid %q", *gridSpec)
	}

	dev, err := oscar.NewAnalyticQAOA(prob, profile)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := oscar.QAOAGrid(1, gb, gg)
	if err != nil {
		log.Fatal(err)
	}

	truth, err := oscar.GenerateDense(grid, dev.Evaluate, 0)
	if err != nil {
		log.Fatal(err)
	}
	recon, stats, err := oscar.Reconstruct(grid, dev.Evaluate, oscar.Options{
		SamplingFraction: *fraction, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	nrmse, err := oscar.NRMSE(truth, recon)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s: %d-point grid, %d samples (%.0fx speedup), NRMSE %.4f\n\n",
		prob.Name, profile.Name, stats.GridSize, stats.Samples, stats.Speedup, nrmse)
	fmt.Println("ground truth (grid search):")
	fmt.Println(render(truth, 24, 72))
	fmt.Printf("oscar reconstruction (%.0f%% of samples):\n", 100**fraction)
	fmt.Println(render(recon, 24, 72))
}
